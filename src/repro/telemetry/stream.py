"""Streaming telemetry bus: bounded, backpressured fan-out of live records.

The exporters in :mod:`repro.telemetry.exporters` are end-of-run
snapshots: they walk the finished trace after the migration is over.  A
fleet cannot wait for the end of the run — an operator watching 256
concurrent migrations needs spans, metric deltas, and violations *as
they happen*, in virtual-clock order, delivered to several consumers at
once (the SLO engine, the OTLP/console exporters, the live console).

This module is that delivery plane:

* :class:`StreamRecord` — one typed, immutable record on the bus:
  an ``event`` (every trace emit, including span start/end markers and
  invariant/SLO violations), a ``span`` (the full finished span,
  published at its end time), or a ``metric`` (one closed per-migration
  run delta, published when the run scope closes).
* :class:`TelemetryBus` — the fan-out point.  Every subscriber is
  **bounded**: push consumers (``callback=``) absorb backpressure by
  being flushed synchronously whenever their buffer fills (the
  *publisher* pays the delivery cost — nothing is ever silently lost),
  and poll consumers choose a drop policy (``drop_oldest`` /
  ``drop_newest``) whose drops are counted, never silent.
* :meth:`TelemetryBus.attach` — tails one :class:`~repro.telemetry.Telemetry`:
  an observer on the event trace converts every emit into a live record,
  and finished spans are published at the moment they close.  ``replay=True``
  first publishes the history already in the trace, so a subscriber that
  attaches mid-run still sees the complete stream.
* :func:`merge_records` — heap-merge of several per-migration streams
  into one fleet stream, ordered by (virtual time, migration, sequence):
  the primitive the fleet runner uses to interleave N concurrent
  migrations into one causally ordered feed.
* :func:`jsonl_from_records` — renders a captured stream in exactly the
  format of :func:`repro.telemetry.exporters.to_jsonl`, which is what
  lets the test-suite prove the live stream loses nothing relative to
  the end-of-run snapshot export.

Everything here is pure bookkeeping on the virtual clock: publishing
never advances time, so a run with a bus attached is byte-identical to
one without.
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

__all__ = [
    "POLICIES",
    "StreamRecord",
    "Subscriber",
    "TelemetryBus",
    "jsonl_from_records",
    "merge_records",
]

#: Record kinds on the bus.
KIND_EVENT = "event"
KIND_SPAN = "span"
KIND_METRIC = "metric"

#: Poll-subscriber overflow policies.
POLICY_DROP_OLDEST = "drop_oldest"
POLICY_DROP_NEWEST = "drop_newest"
POLICIES = (POLICY_DROP_OLDEST, POLICY_DROP_NEWEST)


@dataclass(frozen=True)
class StreamRecord:
    """One immutable record on the bus.

    ``seq`` is the bus-global publish sequence — a total order that
    breaks ties between records stamped at the same virtual time.
    ``source`` scopes the record to a migration (the fleet runner sets
    it to the migration id; a single-testbed tail leaves it empty).
    """

    seq: int
    t_ns: int
    kind: str
    payload: dict[str, Any]
    source: str = ""

    def sort_key(self) -> tuple[int, str, int]:
        return (self.t_ns, self.source, self.seq)


class Subscriber:
    """One bounded consumer endpoint on the bus.

    Push consumers (``callback`` set) receive *batches*: records buffer
    until ``capacity`` is reached, then the whole batch is delivered
    synchronously — backpressure lands on the publisher, not the floor.
    Poll consumers (:meth:`poll`) hold a bounded queue and shed load per
    their ``policy``, counting every dropped record.
    """

    def __init__(
        self,
        name: str,
        capacity: int = 1024,
        policy: str = POLICY_DROP_OLDEST,
        callback: Callable[[list[StreamRecord]], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"subscriber {name!r} needs capacity >= 1")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown overflow policy {policy!r} (expected one of {POLICIES})"
            )
        self.name = name
        self.capacity = capacity
        self.policy = policy
        self.callback = callback
        self.delivered = 0
        self.dropped = 0
        #: Synchronous flushes forced by a full buffer (push consumers).
        self.backpressure_flushes = 0
        self._queue: deque[StreamRecord] = deque()

    # ------------------------------------------------------------------ intake
    def _offer(self, record: StreamRecord) -> None:
        if self.callback is not None:
            self._queue.append(record)
            if len(self._queue) >= self.capacity:
                self.backpressure_flushes += 1
                self.flush()
            return
        if len(self._queue) >= self.capacity:
            if self.policy == POLICY_DROP_NEWEST:
                self.dropped += 1
                return
            self._queue.popleft()
            self.dropped += 1
        self._queue.append(record)

    # ----------------------------------------------------------------- egress
    def flush(self) -> int:
        """Deliver everything buffered to the callback; returns the count."""
        if self.callback is None or not self._queue:
            return 0
        batch = list(self._queue)
        self._queue.clear()
        self.delivered += len(batch)
        self.callback(batch)
        return len(batch)

    def poll(self, max_records: int | None = None) -> list[StreamRecord]:
        """Drain up to ``max_records`` queued records (all by default)."""
        n = len(self._queue) if max_records is None else min(max_records, len(self._queue))
        out = [self._queue.popleft() for _ in range(n)]
        self.delivered += len(out)
        return out

    def __len__(self) -> int:
        return len(self._queue)


class TelemetryBus:
    """Fan-out point for live telemetry records."""

    def __init__(self) -> None:
        self.subscribers: dict[str, Subscriber] = {}
        self.published = 0
        self._seq = 0
        self._taps: list["_Tap"] = []

    # -------------------------------------------------------------- subscribe
    def subscribe(
        self,
        name: str,
        capacity: int = 1024,
        policy: str = POLICY_DROP_OLDEST,
        callback: Callable[[list[StreamRecord]], None] | None = None,
    ) -> Subscriber:
        if name in self.subscribers:
            raise ValueError(f"subscriber {name!r} already exists on this bus")
        subscriber = Subscriber(name, capacity=capacity, policy=policy, callback=callback)
        self.subscribers[name] = subscriber
        return subscriber

    def unsubscribe(self, name: str) -> None:
        self.subscribers.pop(name, None)

    # ---------------------------------------------------------------- publish
    def publish(
        self, t_ns: int, kind: str, payload: dict[str, Any], source: str = ""
    ) -> StreamRecord:
        self._seq += 1
        record = StreamRecord(
            seq=self._seq, t_ns=int(t_ns), kind=kind, payload=payload, source=source
        )
        self.published += 1
        for subscriber in self.subscribers.values():
            subscriber._offer(record)
        return record

    def publish_record(self, record: StreamRecord) -> StreamRecord:
        """Re-publish an existing record (fleet merge), keeping its stamp
        but assigning a fresh bus sequence."""
        self._seq += 1
        stamped = StreamRecord(
            seq=self._seq,
            t_ns=record.t_ns,
            kind=record.kind,
            payload=record.payload,
            source=record.source,
        )
        self.published += 1
        for subscriber in self.subscribers.values():
            subscriber._offer(stamped)
        return stamped

    def flush(self) -> None:
        """Flush every push subscriber's buffered remainder."""
        for subscriber in self.subscribers.values():
            subscriber.flush()

    def stats(self) -> dict[str, Any]:
        """Bus health: published count plus per-subscriber accounting."""
        return {
            "published": self.published,
            "subscribers": {
                name: {
                    "delivered": s.delivered,
                    "dropped": s.dropped,
                    "queued": len(s),
                    "backpressure_flushes": s.backpressure_flushes,
                }
                for name, s in sorted(self.subscribers.items())
            },
        }

    # ------------------------------------------------------------------- taps
    def attach(
        self, telemetry: "Telemetry", source: str = "", replay: bool = True
    ) -> "_Tap":
        """Tail ``telemetry`` onto this bus.

        With ``replay=True`` the history already recorded (events and
        finished spans) is published first, in virtual-clock order, so a
        late subscriber still receives the complete stream; the tap then
        follows the live trace.  The telemetry object learns about the
        bus (``telemetry.bus``) so run-scope closes publish their metric
        deltas too.
        """
        tap = _Tap(self, telemetry, source)
        if replay:
            tap.replay()
        tap.follow()
        self._taps.append(tap)
        return tap

    def finalize(self) -> None:
        """Publish still-open spans (as unfinished records) and flush.

        Called at end of stream so the captured record set is complete
        even when a crash stranded open spans — mirroring how the
        snapshot exporter renders unfinished spans as instants.
        """
        for tap in self._taps:
            tap.publish_open_spans()
        self.flush()


class _Tap:
    """The trace observer that feeds one Telemetry into a bus."""

    def __init__(self, bus: TelemetryBus, telemetry: "Telemetry", source: str) -> None:
        self.bus = bus
        self.telemetry = telemetry
        self.source = source
        self._published_spans: set[int] = set()
        self._span_index: dict[int, Any] = {}
        self._span_scan = 0
        self._following = False

    # ---------------------------------------------------------------- helpers
    def _span_by_id(self, span_id: int):
        spans = self.telemetry.tracer.spans
        if self._span_scan > len(spans):  # tracer.clear() shrank the list
            self._span_index.clear()
            self._span_scan = 0
        while self._span_scan < len(spans):
            span = spans[self._span_scan]
            self._span_index[span.span_id] = span
            self._span_scan += 1
        return self._span_index.get(span_id)

    @staticmethod
    def span_payload(span) -> dict[str, Any]:
        return {
            "span_id": span.span_id,
            "name": span.name,
            "party": span.party,
            "track": span.track,
            "start_ns": span.start_ns,
            "end_ns": span.end_ns,
            "parent_id": span.parent_id,
            "status": span.status,
            "attrs": dict(span.attrs),
        }

    @staticmethod
    def event_payload(event) -> dict[str, Any]:
        return {
            "t_ns": event.t_ns,
            "category": event.category,
            "name": event.name,
            "payload": dict(event.payload),
        }

    # ----------------------------------------------------------------- intake
    def _on_event(self, event) -> None:
        self.bus.publish(
            event.t_ns, KIND_EVENT, self.event_payload(event), source=self.source
        )
        if event.category == "span" and event.name == "end":
            span = self._span_by_id(event.payload.get("span"))
            if span is not None and span.span_id not in self._published_spans:
                self._published_spans.add(span.span_id)
                self.bus.publish(
                    event.t_ns, KIND_SPAN, self.span_payload(span), source=self.source
                )

    def replay(self) -> None:
        for event in self.telemetry.trace.events:
            self.bus.publish(
                event.t_ns, KIND_EVENT, self.event_payload(event), source=self.source
            )
        for span in self.telemetry.tracer.spans:
            if span.finished and span.span_id not in self._published_spans:
                self._published_spans.add(span.span_id)
                self.bus.publish(
                    span.end_ns, KIND_SPAN, self.span_payload(span), source=self.source
                )

    def follow(self) -> None:
        if not self._following:
            self.telemetry.trace.add_observer(self._on_event)
            self.telemetry.bus = self.bus
            self._following = True

    def publish_open_spans(self) -> None:
        for span in self.telemetry.tracer.spans:
            if not span.finished and span.span_id not in self._published_spans:
                self._published_spans.add(span.span_id)
                self.bus.publish(
                    self.telemetry.clock.now_ns,
                    KIND_SPAN,
                    self.span_payload(span),
                    source=self.source,
                )


# ---------------------------------------------------------------------- merge

def merge_records(
    streams: Iterable[Iterable[StreamRecord]],
    offsets_ns: Iterable[int] | None = None,
) -> Iterator[StreamRecord]:
    """Heap-merge several per-migration record streams into fleet order.

    ``offsets_ns`` shifts each stream onto the fleet clock (the fleet
    runner passes each migration's admission time, so records keep their
    within-migration order while interleaving correctly across
    migrations).  Equal virtual timestamps are a *normal* event on the
    fleet timeline (same-seed migrations admitted at the same instant
    produce identical shifted clocks), so ties get a total order: by
    source (the migration id), then by stream position, then by the
    per-stream sequence.  Without the stream-position key, records from
    different migrations whose sources compare equal (e.g. both empty)
    would interleave by their unrelated per-stream seq counters.
    Streams may be empty — or all of them may be — and merge to the
    expected (possibly empty) sequence.
    """
    streams = list(streams)
    offsets = list(offsets_ns) if offsets_ns is not None else [0] * len(streams)
    if len(offsets) != len(streams):
        raise ValueError("need exactly one offset per stream")

    def shifted(
        stream: Iterable[StreamRecord], offset: int, position: int
    ) -> Iterator[tuple[tuple, StreamRecord]]:
        for record in stream:
            moved = StreamRecord(
                seq=record.seq,
                t_ns=record.t_ns + offset,
                kind=record.kind,
                payload=record.payload,
                source=record.source,
            )
            yield (moved.t_ns, moved.source, position, moved.seq), moved

    merged = heapq.merge(
        *(shifted(s, o, i) for i, (s, o) in enumerate(zip(streams, offsets))),
        key=lambda pair: pair[0],
    )
    return (record for _, record in merged)


# ----------------------------------------------------------------- rendering

def jsonl_from_records(records: Iterable[StreamRecord]) -> str:
    """Render a captured stream exactly like the snapshot JSONL exporter.

    Events render in stream order; spans render once each, in span-id
    (start) order — the same layout :func:`~repro.telemetry.exporters.to_jsonl`
    produces from the finished trace, which is what the parity test
    compares byte-for-byte.
    """
    from repro.telemetry.exporters import json_safe

    event_lines: list[str] = []
    span_payloads: dict[int, dict[str, Any]] = {}
    for record in records:
        if record.kind == KIND_EVENT:
            event_lines.append(
                json.dumps(
                    {
                        "type": "event",
                        "t_ns": record.payload["t_ns"],
                        "category": record.payload["category"],
                        "name": record.payload["name"],
                        "payload": json_safe(record.payload["payload"]),
                    },
                    sort_keys=True,
                )
            )
        elif record.kind == KIND_SPAN:
            # Last write wins: a finalize() re-publish of a span that
            # ended after replay carries the completed state.
            span_payloads[record.payload["span_id"]] = record.payload
    span_lines = [
        json.dumps(
            {
                "type": "span",
                "span_id": payload["span_id"],
                "name": payload["name"],
                "party": payload["party"],
                "track": payload["track"],
                "start_ns": payload["start_ns"],
                "end_ns": payload["end_ns"],
                "parent_id": payload["parent_id"],
                "status": payload["status"],
                "attrs": json_safe(payload["attrs"]),
            },
            sort_keys=True,
        )
        for _span_id, payload in sorted(span_payloads.items())
    ]
    lines = event_lines + span_lines
    return "\n".join(lines) + ("\n" if lines else "")
