"""Cross-party causal tracing: wire contexts and the migration DAG.

The span layer (PR 3) records *per-party* time; this module stitches the
parties together.  Every :meth:`repro.net.network.Network.transfer`
stamps a :class:`WireContext` — ``(trace_id, parent_span_id, seq)`` —
onto its wire record at send time, and the span observing the delivery
adopts the sequence number into its attributes.  Spans (with their
parent links) plus the resulting send→recv edges form one causal DAG
spanning source, target, orchestrator, and the migration agent.

Fault injection stays *visible* in the graph instead of leaving silent
gaps:

* a **dropped** transfer is a wire node whose recv edge has no
  destination (a *broken* edge — the bytes entered the wire and nobody
  observed them arrive);
* a **duplicated** transfer is a second wire node linked to the
  original by a *duplicate* edge (same context, same label, two
  deliveries);
* a **reordered** chunk stream marks the two swapped wire records, so
  the out-of-order sends are flagged rather than inferred.

:func:`build_dag` is a pure function of the telemetry + network state;
it never advances the clock, so building the DAG mid-run is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network, TransferRecord
    from repro.telemetry import Telemetry
    from repro.telemetry.spans import Span


@dataclass(frozen=True)
class WireContext:
    """Trace context stamped onto one wire record at send time."""

    #: The migration run's trace id (``mig-<run span id>``), or None when
    #: the transfer happened outside any instrumented run.
    trace_id: str | None
    #: The span that was active (innermost open) when the bytes entered
    #: the wire — the transfer's causal parent.
    parent_span_id: int | None
    #: Global wire sequence number; unique per network, never reused.
    seq: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "seq": self.seq,
        }


#: Which party sends and which receives under each protocol wire label.
#: The network is point-to-point; the label fixes the route, so the DAG
#: can attribute every transfer to its endpoints without guessing.
LABEL_ROUTES: dict[str, tuple[str, str]] = {
    "channel-request": ("target", "source"),
    "ias-quote": ("source", "ias"),
    "channel-answer": ("source", "target"),
    "checkpoint": ("source", "target"),
    "checkpoint-chunk": ("source", "target"),
    "kmigrate": ("source", "target"),
    "agent-escrow-request": ("source", "agent"),
    "agent-escrow": ("agent", "target"),
}


def route_for(label: str) -> tuple[str, str]:
    """(sender, receiver) for ``label``; unknown labels default to the
    migration link's direction."""
    return LABEL_ROUTES.get(label, ("source", "target"))


@dataclass(frozen=True)
class CausalEdge:
    """One directed edge of the migration DAG.

    Node ids are ``"span:<span_id>"`` / ``"wire:<seq>"``.  A recv edge
    with ``dst=None`` is *broken*: the transfer was lost on the wire.
    """

    kind: str  #: "parent" | "send" | "recv" | "duplicate"
    src: str | None
    dst: str | None
    label: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "src": self.src, "dst": self.dst, "label": self.label}


@dataclass
class CausalDag:
    """Spans + wire transfers + the edges connecting them."""

    spans: list["Span"] = field(default_factory=list)
    transfers: list["TransferRecord"] = field(default_factory=list)
    edges: list[CausalEdge] = field(default_factory=list)

    # ------------------------------------------------------------- queries
    def span_by_id(self, span_id: int) -> "Span | None":
        for span in self.spans:
            if span.span_id == span_id:
                return span
        return None

    def transfer_by_seq(self, seq: int) -> "TransferRecord | None":
        for record in self.transfers:
            if record.seq == seq:
                return record
        return None

    def broken_edges(self) -> list[CausalEdge]:
        """Recv edges whose transfer was dropped: sent, never observed."""
        return [e for e in self.edges if e.kind == "recv" and e.dst is None]

    def duplicate_edges(self) -> list[CausalEdge]:
        """Edges linking a duplicated delivery back to its original."""
        return [e for e in self.edges if e.kind == "duplicate"]

    def reordered_transfers(self) -> list["TransferRecord"]:
        """Wire records that crossed out of their stream order."""
        return [t for t in self.transfers if t.reordered]

    def trace_ids(self) -> list[str]:
        """Every distinct trace id seen on the wire, in first-seen order."""
        seen: list[str] = []
        for record in self.transfers:
            tid = record.ctx.trace_id if record.ctx is not None else None
            if tid is not None and tid not in seen:
                seen.append(tid)
        return seen

    def health(self) -> dict[str, Any]:
        """The DAG's fault summary, ready for reports and CI gates."""
        return {
            "spans": len(self.spans),
            "transfers": len(self.transfers),
            "edges": len(self.edges),
            "broken_edges": [
                {"label": e.label, "src": e.src} for e in self.broken_edges()
            ],
            "duplicate_edges": [
                {"label": e.label, "src": e.src, "dst": e.dst}
                for e in self.duplicate_edges()
            ],
            "reordered_transfers": [
                {"label": t.label, "seq": t.seq} for t in self.reordered_transfers()
            ],
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "nodes": (
                [f"span:{s.span_id}" for s in self.spans]
                + [f"wire:{t.seq}" for t in self.transfers]
            ),
            "edges": [e.as_dict() for e in self.edges],
            "health": self.health(),
        }

    def to_dot(self) -> str:
        """The DAG as Graphviz source (``repro explain --format dot``).

        Spans cluster by party, wire records render as boxes between the
        clusters, and fault edges stay visually distinct: a broken recv
        edge ends in a red point node (the bytes left, nobody received
        them), duplicates are dotted.  Output is deterministic — node
        order follows span ids and wire sequence numbers.
        """

        def q(text: str) -> str:
            return '"' + str(text).replace("\\", "\\\\").replace('"', '\\"') + '"'

        def label_q(*rows: str) -> str:
            # Multi-row label: rows joined by the graphviz \n escape
            # (which q() would defensively double — hence its own helper).
            joined = "\\n".join(str(r).replace('"', '\\"') for r in rows)
            return '"' + joined + '"'

        lines = [
            "digraph migration {",
            "  rankdir=LR;",
            '  node [fontname="monospace", fontsize=10];',
        ]
        parties: dict[str, list["Span"]] = {}
        for span in self.spans:
            parties.setdefault(span.party, []).append(span)
        for index, party in enumerate(sorted(parties)):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f"    label={q(party)};")
            for span in parties[party]:
                duration = (
                    f"{span.duration_ns / 1_000:.0f}us" if span.finished else "open"
                )
                shape = "ellipse" if span.status == "ok" else "doubleoctagon"
                node = q(f"span:{span.span_id}")
                label = label_q(span.name, duration)
                lines.append(f"    {node} [label={label}, shape={shape}];")
            lines.append("  }")
        for record in self.transfers:
            node = q(f"wire:{record.seq}")
            label = label_q(f"{record.label} #{record.seq}", f"{record.n_bytes}B")
            lines.append(
                f"  {node} [label={label}, shape=box, style=filled, "
                "fillcolor=lightyellow];"
            )
        styles = {
            "parent": "[color=gray50]",
            "send": "[color=steelblue]",
            "recv": "[color=steelblue, style=bold]",
            "duplicate": "[color=red, style=dotted]",
        }
        broken = 0
        for edge in self.edges:
            style = styles.get(edge.kind, "")
            if edge.src is None:
                continue
            if edge.dst is None:
                broken += 1
                sink = f"lost:{broken}"
                lines.append(
                    f"  {q(sink)} [label=\"\", shape=point, color=red, width=0.15];"
                )
                lines.append(f"  {q(edge.src)} -> {q(sink)} [color=red, style=dashed];")
                continue
            lines.append(f"  {q(edge.src)} -> {q(edge.dst)} {style};".rstrip() + "")
        lines.append("}")
        return "\n".join(lines) + "\n"


def build_dag(telemetry: "Telemetry", network: "Network") -> CausalDag:
    """Assemble the causal DAG from one run's spans and wire log."""
    spans = list(telemetry.tracer.spans)
    transfers = list(network.log)
    edges: list[CausalEdge] = []

    for span in spans:
        if span.parent_id is not None:
            edges.append(
                CausalEdge("parent", f"span:{span.parent_id}", f"span:{span.span_id}")
            )

    _mark_reordered(telemetry, transfers)

    for record in transfers:
        node = f"wire:{record.seq}"
        parent = record.ctx.parent_span_id if record.ctx is not None else None
        edges.append(
            CausalEdge(
                "send",
                f"span:{parent}" if parent is not None else None,
                node,
                label=record.label,
            )
        )
        if record.duplicate and record.duplicate_of is not None:
            edges.append(
                CausalEdge(
                    "duplicate", f"wire:{record.duplicate_of}", node, label=record.label
                )
            )
        if record.status == "lost":
            edges.append(CausalEdge("recv", node, None, label=record.label))
        elif record.status == "delivered":
            dst = (
                f"span:{record.recv_span_id}"
                if record.recv_span_id is not None
                else None
            )
            edges.append(CausalEdge("recv", node, dst, label=record.label))
    return CausalDag(spans=spans, transfers=transfers, edges=edges)


def _mark_reordered(telemetry: "Telemetry", transfers: list["TransferRecord"]) -> None:
    """Flag the wire records a stream reorder actually swapped.

    ``chunk_send_order`` emits ``("fault", "reorder", label=L, nth=N)``
    when it swaps the N-th and (N+1)-th frames of stream ``L``; the
    corresponding *sent* records (duplicates excluded) are the swapped
    positions in send order.
    """
    for event in telemetry.trace.events:
        if event.category != "fault" or event.name != "reorder":
            continue
        label = event.payload.get("label")
        nth = event.payload.get("nth")
        if label is None or nth is None:
            continue
        stream = [t for t in transfers if t.label == label and not t.duplicate]
        i = int(nth) - 1
        if 0 <= i and i + 1 < len(stream):
            stream[i].reordered = True
            stream[i + 1].reordered = True
