"""Streaming quantile sketches and per-migration metric scoping.

Two building blocks for *aggregate* observability — the layer that has
to survive the jump from one migration to a fleet of them:

* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile
  sketch: O(log range) memory over an unbounded stream, deterministic
  (no RNG, no wall time), and **mergeable** — the sketch of a chain, a
  sweep, or a whole fleet is the merge of its per-migration sketches,
  with the same relative-error guarantee.  p50/p95/p99 queries carry a
  configurable relative error (1% by default).

* :class:`RunScope` — a begin/end bracket over one
  :class:`~repro.telemetry.metrics.MetricsRegistry` that yields the
  *delta* snapshot of one migration run.  Several migrations on one
  testbed (chain hops, redrives) share a single registry; scoping the
  registry by migration id is what lets each run report its own
  counters instead of the accumulated total — and lets the invariant
  monitor assert the scopes actually partition the global counts
  (see :meth:`repro.telemetry.Telemetry.run_isolation_violations`).

Everything here is pure bookkeeping: no sketch or scope operation ever
advances the virtual clock.
"""

from __future__ import annotations

import math
from typing import Any

from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)

__all__ = [
    "QuantileSketch",
    "RunScope",
    "aggregate_run_metrics",
    "scalar_series",
    "snapshot_delta",
]


class QuantileSketch:
    """Mergeable streaming quantiles with bounded relative error.

    Values land in geometric buckets ``gamma^i``; a quantile answer is
    the midpoint of its bucket, within ``relative_error`` of the true
    value.  Only non-negative values are accepted (every stream we
    aggregate is a latency, a byte count, or a retry count).
    """

    kind = "sketch"

    def __init__(self, relative_error: float = 0.01) -> None:
        if not 0 < relative_error < 1:
            raise ValueError(f"relative error must be in (0, 1), got {relative_error}")
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    # ------------------------------------------------------------- updates
    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"sketch values must be non-negative, got {value}")
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value == 0:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (same relative error required)."""
        if abs(other.relative_error - self.relative_error) > 1e-12:
            raise ValueError(
                f"cannot merge sketches with relative errors "
                f"{self.relative_error} and {other.relative_error}"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        return self

    # ------------------------------------------------------------- queries
    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0 when empty)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Tail-biased rank: the answer is the smallest bucket whose
        # cumulative count covers position q·(n−1) from above — p99 of
        # three samples is the largest one, not the median.
        target = q * (self.count - 1) + 1
        if self.zero_count >= target:
            return 0.0
        running = self.zero_count
        for index in sorted(self.buckets):
            running += self.buckets[index]
            if running >= target:
                # Bucket i covers (gamma^(i-1), gamma^i]; answer its midpoint.
                return 2.0 * self._gamma ** index / (self._gamma + 1.0)
        return self.max if self.max is not None else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # ----------------------------------------------------------- round-trip
    def to_dict(self) -> dict[str, Any]:
        return {
            "relative_error": self.relative_error,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "QuantileSketch":
        sketch = cls(relative_error=float(payload["relative_error"]))
        sketch.buckets = {int(i): int(n) for i, n in payload["buckets"].items()}
        sketch.zero_count = int(payload["zero_count"])
        sketch.count = int(payload["count"])
        sketch.sum = float(payload["sum"])
        sketch.min = payload["min"]
        sketch.max = payload["max"]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch n={self.count} p50={self.p50:.0f} "
            f"p95={self.p95:.0f} p99={self.p99:.0f}>"
        )


# ---------------------------------------------------------------------------
# Run scoping: per-migration registry deltas
# ---------------------------------------------------------------------------

class RunScope:
    """Captures what one migration run adds to a shared registry.

    Opened at ``migration.run`` start and closed when the span closes
    (success *or* crash), the scope subtracts its begin-time snapshot
    from the end-time snapshot.  Counters and histograms report the
    run's own increments; gauges report their value at scope close (a
    gauge is a point-in-time reading — ``migration.downtime_ns`` at the
    end of a run *is* that run's downtime).

    A registry reset inside the scope (benchmark harnesses reset
    between iterations) would make subtraction meaningless, so the
    scope records the registry *generation* and closes to ``None`` when
    it changed — a tainted scope, excluded from isolation accounting.
    """

    def __init__(self, registry: MetricsRegistry, run_id: str) -> None:
        self.registry = registry
        self.run_id = run_id
        self.generation = getattr(registry, "generation", 0)
        self._before = registry.snapshot()

    def close(self) -> dict[str, Any] | None:
        if getattr(self.registry, "generation", 0) != self.generation:
            return None  # tainted: the registry was reset mid-scope
        kinds = {
            key: instrument.kind
            for key, instrument in (
                (k, self.registry._instruments[k]) for k in self.registry._instruments
            )
        }
        return snapshot_delta(self._before, self.registry.snapshot(), kinds)


def snapshot_delta(
    before: dict[str, Any],
    after: dict[str, Any],
    kinds: dict[str, str] | None = None,
) -> dict[str, Any]:
    """``after - before`` over two registry snapshots.

    * counters and histograms subtract (series absent from ``before``
      start at zero);
    * gauges pass through their ``after`` value (point-in-time);
    * series whose delta is all-zero are dropped, so the result reads
      as "what this run did", not the registry's whole catalogue.
    """
    kinds = kinds or {}
    delta: dict[str, Any] = {}
    for key, after_value in after.items():
        kind = kinds.get(key)
        before_value = before.get(key)
        if isinstance(after_value, dict):  # histogram snapshot
            if before_value is None:
                before_value = {"count": 0, "sum": 0, "buckets": {}}
            count = after_value["count"] - before_value["count"]
            if count == 0:
                continue
            total = after_value["sum"] - before_value["sum"]
            buckets = {
                bound: after_value["buckets"][bound]
                - before_value["buckets"].get(bound, 0)
                for bound in after_value["buckets"]
            }
            delta[key] = {
                "count": count,
                "sum": total,
                "mean": total / count if count else 0.0,
                "buckets": buckets,
            }
        elif kind == "gauge":
            delta[key] = after_value
        else:
            moved = after_value - (before_value or 0)
            if moved:
                delta[key] = moved
    return delta


def scalar_series(delta: dict[str, Any]) -> dict[str, float]:
    """The scalar (non-histogram) series of one delta snapshot."""
    return {k: v for k, v in delta.items() if not isinstance(v, dict)}


def aggregate_run_metrics(
    run_metrics: dict[str, dict[str, Any]],
    relative_error: float = 0.01,
) -> dict[str, QuantileSketch]:
    """Fold per-run delta snapshots into one sketch per series.

    ``run_metrics`` maps run id → delta snapshot (the shape
    :class:`RunScope` produces).  Every scalar series becomes a
    :class:`QuantileSketch` over its per-run values; histogram deltas
    contribute their per-run *mean* under ``<series>:mean``.  The result
    answers fleet questions — p99 downtime across a chain, p95 journal
    appends across a sweep — without keeping any run's raw data.
    """
    sketches: dict[str, QuantileSketch] = {}

    def observe(series: str, value: float) -> None:
        if value < 0:
            return  # a negative delta is an isolation bug, not a latency
        sketch = sketches.get(series)
        if sketch is None:
            sketch = sketches[series] = QuantileSketch(relative_error)
        sketch.observe(value)

    for _run_id, delta in sorted(run_metrics.items()):
        for series, value in delta.items():
            if isinstance(value, dict):
                observe(f"{series}:mean", value.get("mean", 0.0))
            else:
                observe(series, float(value))
    return sketches
