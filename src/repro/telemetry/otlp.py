"""OTLP-JSON exporter: traces and metrics in the OpenTelemetry wire shape.

The Chrome and Prometheus exporters feed a human with a browser; this
one feeds a *collector*.  :func:`to_otlp_traces` and
:func:`to_otlp_metrics` render one telemetry surface as OTLP/JSON
(`ExportTraceServiceRequest` / `ExportMetricsServiceRequest` bodies per
the OTLP 1.x JSON encoding), so a fleet run's artifacts load straight
into any OpenTelemetry backend:

* spans keep their nesting (``parentSpanId``) and party/track placement
  (as attributes); the 128-bit ``traceId`` is derived deterministically
  from the run's trace id, so two runs of the same seed produce
  byte-identical documents;
* resource attributes carry run identity — migration id, crypto
  backend, seed — which is what makes 500 concurrent migrations
  separable on the backend side;
* counters export as monotonic cumulative sums, gauges as gauges,
  fixed-bucket histograms as explicit-bounds histograms, and
  :class:`~repro.telemetry.sketch.QuantileSketch` aggregates convert to
  explicit-bounds histograms whose bounds are the sketch's own
  ``gamma^i`` bucket boundaries (no resampling, no precision loss
  beyond the sketch's).

Per the OTLP JSON mapping, 64-bit integers (timestamps, int sums) are
encoded as **strings** and trace/span ids as lowercase hex.  The
:func:`spans_from_otlp` / :func:`metrics_from_otlp` readers invert the
encoding for round-trip tests and offline tooling.

Everything is a pure function of telemetry state — exporting never
advances the clock — and every list is emitted in a deterministic
order (spans in creation order, metrics sorted by series key), so CI
can diff OTLP artifacts byte-wise like every other exporter output.
"""

from __future__ import annotations

import hashlib
import os
from typing import TYPE_CHECKING, Any

from repro.telemetry.exporters import json_safe
from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    metric_key,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry
    from repro.telemetry.sketch import QuantileSketch

__all__ = [
    "default_resource",
    "metrics_from_otlp",
    "sketch_to_otlp_histogram",
    "spans_from_otlp",
    "to_otlp_metrics",
    "to_otlp_traces",
]

SCOPE = {"name": "repro.telemetry", "version": "1"}

#: OTLP enum values (the JSON encoding uses the numbers).
SPAN_KIND_INTERNAL = 1
STATUS_OK = 1
STATUS_ERROR = 2
AGGREGATION_CUMULATIVE = 2


# ------------------------------------------------------------------ encoding

def _attr_value(value: Any) -> dict[str, Any]:
    """One OTLP ``AnyValue``.  64-bit ints are strings per the mapping."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, str):
        return {"stringValue": value}
    if isinstance(value, (list, tuple)):
        return {"arrayValue": {"values": [_attr_value(json_safe(v)) for v in value]}}
    if isinstance(value, dict):
        return {
            "kvlistValue": {
                "values": [_kv(str(k), json_safe(v)) for k, v in sorted(value.items())]
            }
        }
    return {"stringValue": str(json_safe(value))}


def _kv(key: str, value: Any) -> dict[str, Any]:
    return {"key": key, "value": _attr_value(value)}


def _attributes(attrs: dict[str, Any]) -> list[dict[str, Any]]:
    return [_kv(str(k), json_safe(attrs[k])) for k in sorted(attrs)]


def _decode_value(any_value: dict[str, Any]) -> Any:
    if "intValue" in any_value:
        return int(any_value["intValue"])
    if "doubleValue" in any_value:
        return any_value["doubleValue"]
    if "boolValue" in any_value:
        return any_value["boolValue"]
    if "stringValue" in any_value:
        return any_value["stringValue"]
    if "arrayValue" in any_value:
        return [_decode_value(v) for v in any_value["arrayValue"].get("values", [])]
    if "kvlistValue" in any_value:
        return {
            kv["key"]: _decode_value(kv["value"])
            for kv in any_value["kvlistValue"].get("values", [])
        }
    return None


def _decode_attributes(attributes: list[dict[str, Any]]) -> dict[str, Any]:
    return {kv["key"]: _decode_value(kv["value"]) for kv in attributes}


def otlp_trace_id(trace_id: str | None) -> str:
    """A deterministic 128-bit OTLP trace id from the run's trace id."""
    return hashlib.sha256((trace_id or "repro").encode()).hexdigest()[:32]


def otlp_span_id(span_id: int) -> str:
    return f"{span_id & 0xFFFFFFFFFFFFFFFF:016x}"


def default_resource(telemetry: "Telemetry | None" = None, **extra: Any) -> dict[str, Any]:
    """Resource attributes identifying one migration run.

    ``migration.id`` is the run's trace id, ``crypto.backend`` the
    active checkpoint crypto backend — the two keys a fleet backend
    groups by.  Callers add ``seed`` and friends via ``extra``.
    """
    resource: dict[str, Any] = {"service.name": "repro-migration"}
    if telemetry is not None and getattr(telemetry.tracer, "trace_id", None):
        resource["migration.id"] = telemetry.tracer.trace_id
    resource["crypto.backend"] = os.environ.get("REPRO_CRYPTO_BACKEND", "reference")
    resource.update(extra)
    return resource


# -------------------------------------------------------------------- traces

def to_otlp_traces(
    telemetry: "Telemetry", resource: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Every span as one OTLP/JSON ``ExportTraceServiceRequest`` body."""
    if resource is None:
        resource = default_resource(telemetry)
    trace_id = otlp_trace_id(getattr(telemetry.tracer, "trace_id", None))
    spans = []
    for span in telemetry.tracer.spans:
        end_ns = span.end_ns if span.end_ns is not None else span.start_ns
        status_code = STATUS_OK if span.status == "ok" else STATUS_ERROR
        otlp_span: dict[str, Any] = {
            "traceId": trace_id,
            "spanId": otlp_span_id(span.span_id),
            "parentSpanId": otlp_span_id(span.parent_id) if span.parent_id else "",
            "name": span.name,
            "kind": SPAN_KIND_INTERNAL,
            "startTimeUnixNano": str(span.start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": _attributes(
                {"repro.party": span.party, "repro.track": span.track, **span.attrs}
            ),
            "status": {"code": status_code},
        }
        if status_code == STATUS_ERROR:
            otlp_span["status"]["message"] = span.status
        spans.append(otlp_span)
    return {
        "resourceSpans": [
            {
                "resource": {"attributes": _attributes(resource)},
                "scopeSpans": [{"scope": dict(SCOPE), "spans": spans}],
            }
        ]
    }


def spans_from_otlp(document: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten an OTLP traces document back into plain span dicts."""
    result = []
    for resource_spans in document.get("resourceSpans", []):
        resource = _decode_attributes(resource_spans["resource"]["attributes"])
        for scope_spans in resource_spans.get("scopeSpans", []):
            for span in scope_spans.get("spans", []):
                result.append(
                    {
                        "trace_id": span["traceId"],
                        "span_id": int(span["spanId"], 16),
                        "parent_id": (
                            int(span["parentSpanId"], 16)
                            if span.get("parentSpanId")
                            else None
                        ),
                        "name": span["name"],
                        "start_ns": int(span["startTimeUnixNano"]),
                        "end_ns": int(span["endTimeUnixNano"]),
                        "status": span.get("status", {}),
                        "attributes": _decode_attributes(span.get("attributes", [])),
                        "resource": resource,
                    }
                )
    return result


# ------------------------------------------------------------------- metrics

def sketch_to_otlp_histogram(
    name: str,
    sketch: "QuantileSketch",
    t_ns: int = 0,
    attributes: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One quantile sketch as an OTLP explicit-bounds histogram metric.

    The sketch's geometric buckets *are* the explicit bounds: bucket
    index ``i`` covers ``(gamma^(i-1), gamma^i]``, so emitting bounds
    ``gamma^i`` for every occupied index preserves the sketch's exact
    counts.  Zero-valued observations land in the first bucket (their
    upper bound is the smallest emitted bound), and the trailing
    overflow bucket is always empty by construction.
    """
    gamma = (1.0 + sketch.relative_error) / (1.0 - sketch.relative_error)
    indices = sorted(sketch.buckets)
    bounds = [gamma ** i for i in indices]
    counts = [sketch.buckets[i] for i in indices]
    if bounds:
        counts[0] += sketch.zero_count
        bucket_counts = counts + [0]
    else:
        bounds = [0.0]
        bucket_counts = [sketch.zero_count, 0]
    point: dict[str, Any] = {
        "attributes": _attributes(attributes or {}),
        "timeUnixNano": str(int(t_ns)),
        "count": str(sketch.count),
        "sum": sketch.sum,
        "bucketCounts": [str(c) for c in bucket_counts],
        "explicitBounds": bounds,
    }
    if sketch.min is not None:
        point["min"] = sketch.min
    if sketch.max is not None:
        point["max"] = sketch.max
    return {
        "name": name,
        "histogram": {
            "aggregationTemporality": AGGREGATION_CUMULATIVE,
            "dataPoints": [point],
        },
    }


def to_otlp_metrics(
    telemetry: "Telemetry",
    resource: dict[str, Any] | None = None,
    sketches: dict[str, "QuantileSketch"] | None = None,
) -> dict[str, Any]:
    """The registry (plus optional fleet sketches) as OTLP/JSON metrics."""
    if resource is None:
        resource = default_resource(telemetry)
    now = str(telemetry.clock.now_ns)
    metrics: list[dict[str, Any]] = []
    instruments = sorted(
        telemetry.metrics, key=lambda i: metric_key(i.name, i.labels)
    )
    for instrument in instruments:
        attributes = _attributes(instrument.labels)
        if isinstance(instrument, CounterMetric):
            metrics.append(
                {
                    "name": instrument.name,
                    "sum": {
                        "aggregationTemporality": AGGREGATION_CUMULATIVE,
                        "isMonotonic": True,
                        "dataPoints": [
                            {
                                "attributes": attributes,
                                "timeUnixNano": now,
                                "asInt": str(instrument.value),
                            }
                        ],
                    },
                }
            )
        elif isinstance(instrument, GaugeMetric):
            value = instrument.value
            point: dict[str, Any] = {"attributes": attributes, "timeUnixNano": now}
            if isinstance(value, int):
                point["asInt"] = str(value)
            else:
                point["asDouble"] = value
            metrics.append({"name": instrument.name, "gauge": {"dataPoints": [point]}})
        elif isinstance(instrument, HistogramMetric):
            running, bucket_counts = 0, []
            for count in instrument.bucket_counts[:-1]:
                bucket_counts.append(count)
                running += count
            bucket_counts.append(instrument.count - running)
            metrics.append(
                {
                    "name": instrument.name,
                    "histogram": {
                        "aggregationTemporality": AGGREGATION_CUMULATIVE,
                        "dataPoints": [
                            {
                                "attributes": attributes,
                                "timeUnixNano": now,
                                "count": str(instrument.count),
                                "sum": instrument.sum,
                                "bucketCounts": [str(c) for c in bucket_counts],
                                "explicitBounds": list(instrument.buckets),
                            }
                        ],
                    },
                }
            )
    for name in sorted(sketches or {}):
        metrics.append(
            sketch_to_otlp_histogram(
                name, sketches[name], t_ns=telemetry.clock.now_ns
            )
        )
    return {
        "resourceMetrics": [
            {
                "resource": {"attributes": _attributes(resource)},
                "scopeMetrics": [{"scope": dict(SCOPE), "metrics": metrics}],
            }
        ]
    }


def metrics_from_otlp(document: dict[str, Any]) -> dict[str, Any]:
    """Flatten an OTLP metrics document into ``series key -> value``.

    Counters and gauges come back as scalars, histograms as
    ``{"count", "sum", "bucket_counts", "bounds"}`` dicts — enough for
    round-trip tests to compare against the registry they started from.
    """
    result: dict[str, Any] = {}
    for resource_metrics in document.get("resourceMetrics", []):
        for scope_metrics in resource_metrics.get("scopeMetrics", []):
            for metric in scope_metrics.get("metrics", []):
                name = metric["name"]
                if "sum" in metric or "gauge" in metric:
                    body = metric.get("sum") or metric.get("gauge")
                    for point in body.get("dataPoints", []):
                        labels = _decode_attributes(point.get("attributes", []))
                        value = (
                            int(point["asInt"])
                            if "asInt" in point
                            else point.get("asDouble", 0)
                        )
                        result[metric_key(name, labels)] = value
                elif "histogram" in metric:
                    for point in metric["histogram"].get("dataPoints", []):
                        labels = _decode_attributes(point.get("attributes", []))
                        result[metric_key(name, labels)] = {
                            "count": int(point["count"]),
                            "sum": point["sum"],
                            "bucket_counts": [int(c) for c in point["bucketCounts"]],
                            "bounds": list(point["explicitBounds"]),
                        }
    return result
