"""Wait-state attribution: typed queueing time as first-class blame.

Once migrations share hosts (EPC pages, NIC bandwidth, admission
slots), a migration's wall time is no longer its running time — it
queues.  This module makes that queueing *observable* with the same
machinery the critical-path engine uses for spans and wire transfers:

* a :class:`WaitProfile` decomposes one migration's wall time into
  ``running`` plus typed ``queued:*`` intervals, with the conservation
  rule ``wall ≡ running + Σ queued`` enforced as a hard invariant;
* :func:`wait_segments` renders the queued intervals as critical-path
  :class:`~repro.telemetry.criticalpath.Segment` values (kind
  ``"wait"``), so ``"wait/host-03/epc"`` ranks in a contribution table
  exactly like ``"source/journal.commit"``;
* :func:`fleet_critical_path` folds those wait segments together with
  the migration's own critical-path report (shifted onto the fleet
  clock) into one gapless :class:`CriticalPathReport` over the whole
  ``[arrival, end)`` interval — 100% of wall time attributed, by
  construction.

Everything is a pure function of recorded state; nothing here advances
a clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import InvariantViolation
from repro.telemetry.criticalpath import Contribution, CriticalPathReport, Segment, _rank

__all__ = [
    "WAIT_ADMISSION",
    "WAIT_BANDWIDTH",
    "WAIT_EPC",
    "WAIT_KINDS",
    "WaitProfile",
    "fleet_critical_path",
    "verify_conservation",
    "wait_blame_name",
    "wait_segments",
]

#: Typed wait states, in the order queues are traversed: a migration
#: first waits for an admission slot, then for EPC pages on its target
#: host, then for a bandwidth grant on both NICs.
WAIT_ADMISSION = "admission"
WAIT_EPC = "epc"
WAIT_BANDWIDTH = "bandwidth"
WAIT_KINDS = (WAIT_ADMISSION, WAIT_EPC, WAIT_BANDWIDTH)

#: Wait segments use negative uids so they can never collide with a
#: span id or wire seq inside a folded report.
_WAIT_UID_BASE = -1000


def wait_blame_name(kind: str, host: int | None) -> str:
    """The blame label for one typed wait (mirrors span unit names)."""
    if kind == WAIT_ADMISSION or host is None:
        return f"wait/fleet/{kind}"
    return f"wait/host-{host:02d}/{kind}"


@dataclass(frozen=True)
class WaitProfile:
    """One migration's wall-time decomposition on the fleet timeline.

    ``waits`` is ordered: each entry occupies the interval immediately
    after the previous one, starting at ``arrival_ns``; running time is
    the remainder ``[start_ns, end_ns)``.
    """

    mig_id: str
    arrival_ns: int
    start_ns: int
    end_ns: int
    #: Ordered ``(kind, duration_ns, host)`` entries; ``host`` is None
    #: for fleet-wide queues (admission).
    waits: tuple[tuple[str, int, int | None], ...]
    source_host: int | None = None
    target_host: int | None = None

    @property
    def wall_ns(self) -> int:
        return self.end_ns - self.arrival_ns

    @property
    def running_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def queued_ns(self) -> int:
        return sum(ns for _, ns, _ in self.waits)

    def queued_by_kind(self) -> dict[str, int]:
        out = {kind: 0 for kind in WAIT_KINDS}
        for kind, ns, _ in self.waits:
            out[kind] = out.get(kind, 0) + ns
        return out

    def as_dict(self) -> dict[str, Any]:
        return {
            "mig_id": self.mig_id,
            "arrival_ns": self.arrival_ns,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "wall_ns": self.wall_ns,
            "running_ns": self.running_ns,
            "queued_ns": self.queued_ns,
            "waits": {
                wait_blame_name(kind, host): ns
                for kind, ns, host in self.waits
                if ns > 0
            },
            "source_host": self.source_host,
            "target_host": self.target_host,
        }


def verify_conservation(profile: WaitProfile) -> None:
    """Hard invariant: wall time ≡ running + Σ typed waits, gapless.

    The decomposition is constructed to satisfy this; a violation means
    the host model granted a start time that is not the sum of its own
    queue delays — a scheduling bug worth stopping the run for.
    """
    if profile.arrival_ns + profile.queued_ns != profile.start_ns:
        raise InvariantViolation(
            f"{profile.mig_id}: typed waits sum to {profile.queued_ns}ns but the "
            f"admission gap is {profile.start_ns - profile.arrival_ns}ns"
        )
    if profile.wall_ns != profile.running_ns + profile.queued_ns:
        raise InvariantViolation(
            f"{profile.mig_id}: wall {profile.wall_ns}ns != running "
            f"{profile.running_ns}ns + queued {profile.queued_ns}ns"
        )


def wait_segments(profile: WaitProfile) -> list[Segment]:
    """The queued intervals as critical-path segments (kind ``"wait"``).

    Zero-duration waits are skipped; the segments tile
    ``[arrival_ns, start_ns)`` exactly in queue-traversal order.
    """
    segments: list[Segment] = []
    cursor = profile.arrival_ns
    for offset, (kind, ns, host) in enumerate(profile.waits):
        if ns <= 0:
            continue
        segments.append(
            Segment(
                start_ns=cursor,
                end_ns=cursor + ns,
                blame=wait_blame_name(kind, host),
                kind="wait",
                uid=_WAIT_UID_BASE - offset,
            )
        )
        cursor += ns
    return segments


def fleet_critical_path(
    profile: WaitProfile,
    inner: CriticalPathReport | None = None,
) -> CriticalPathReport:
    """Fold typed waits and the migration's own critical path together.

    The anchor interval is the migration's full ``[arrival, end)`` wall
    time on the *fleet* clock.  Queued time becomes wait segments;
    running time is the ``inner`` report's segments shifted onto the
    fleet clock (same machinery ``repro explain`` uses, so
    ``blames("wait/host-03/epc")`` and ``blames("journal.commit")``
    answer through one API), with the local time outside the inner
    anchor — enclave setup before ``migration.run`` starts, teardown
    after it ends — tiled by explicit ``setup``/``teardown`` segments.
    Without an inner report the whole running interval blames the
    anchor.  Either way the result is gapless: attributed_ns equals
    wall_ns by construction.

    ``inner`` timestamps are on the migration's *local* virtual clock,
    whose zero maps to ``profile.start_ns`` on the fleet clock.
    """
    verify_conservation(profile)
    segments = wait_segments(profile)
    names: list[str] = [s.blame for s in segments]
    if inner is not None and profile.running_ns > 0:
        shift = profile.start_ns
        inner_start = min(max(inner.start_ns + shift, profile.start_ns), profile.end_ns)
        inner_end = min(max(inner.end_ns + shift, inner_start), profile.end_ns)
        if inner_start > profile.start_ns:
            blame = f"{profile.mig_id}/setup"
            segments.append(
                Segment(profile.start_ns, inner_start, blame, "span",
                        _WAIT_UID_BASE - len(WAIT_KINDS) - 1)
            )
            names.append(blame)
        for seg in inner.segments:
            start = min(max(seg.start_ns + shift, inner_start), inner_end)
            end = min(max(seg.end_ns + shift, inner_start), inner_end)
            if end <= start:
                continue
            segments.append(Segment(start, end, seg.blame, seg.kind, seg.uid))
        if inner_end < profile.end_ns:
            blame = f"{profile.mig_id}/teardown"
            segments.append(
                Segment(inner_end, profile.end_ns, blame, "span",
                        _WAIT_UID_BASE - len(WAIT_KINDS) - 2)
            )
            names.append(blame)
        for name in inner.blame_path_names:
            if name not in names:
                names.append(name)
    elif profile.running_ns > 0:
        blame = f"{profile.mig_id}/migration.run"
        segments.append(
            Segment(
                start_ns=profile.start_ns,
                end_ns=profile.end_ns,
                blame=blame,
                kind="span",
                uid=_WAIT_UID_BASE - len(WAIT_KINDS),
            )
        )
        names.append(blame)
    contributions: list[Contribution] = _rank(segments, profile.wall_ns)
    return CriticalPathReport(
        anchor=f"fleet.migration/{profile.mig_id}",
        start_ns=profile.arrival_ns,
        end_ns=profile.end_ns,
        segments=segments,
        contributions=contributions,
        blame_path_names=names,
    )
