"""Typed metrics: counters, gauges and fixed-bucket histograms.

Replaces the ad-hoc ``collections.Counter`` that used to live inside
:class:`~repro.sim.trace.EventTrace`.  Naming scheme (documented in
``docs/OBSERVABILITY.md``):

* metric names are dot-separated, lowest-frequency term first
  (``migration.downtime_ns``, ``wire.bytes``, ``journal.commit_latency_ns``);
* monotonically increasing counters end in ``_total`` or name the unit
  they accumulate (``wire.bytes``);
* label sets are rendered ``name{key=value,key=value}`` with keys sorted,
  so one (name, labels) pair is exactly one time series.

Every instrument is *typed*: asking for ``counter("x")`` after ``gauge("x")``
was registered is a programming error and raises immediately — the same
name must always mean the same kind of quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Default histogram bucket ladder, in nanoseconds: 1us .. 10s, decades.
DEFAULT_NS_BUCKETS = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
)


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """Canonical ``name{key=value}`` series key (keys sorted, no spaces)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class CounterMetric:
    """A monotonically increasing count (events, bytes, retries)."""

    name: str
    labels: dict[str, Any]
    value: int = 0

    kind = "counter"

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name} cannot decrease (delta={delta})")
        self.value += delta

    def reset(self) -> None:
        self.value = 0

    def snapshot_value(self) -> int:
        return self.value


@dataclass
class GaugeMetric:
    """A point-in-time quantity (downtime of the last run, live instances)."""

    name: str
    labels: dict[str, Any]
    value: float = 0

    kind = "gauge"

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, delta: float = 1) -> None:
        self.value += delta

    def dec(self, delta: float = 1) -> None:
        self.value -= delta

    def reset(self) -> None:
        self.value = 0

    def snapshot_value(self) -> float:
        return self.value


@dataclass
class HistogramMetric:
    """Fixed-bucket distribution (latencies); buckets are upper bounds."""

    name: str
    labels: dict[str, Any]
    buckets: tuple[float, ...] = DEFAULT_NS_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0

    kind = "histogram"

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(self.buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        if not self.bucket_counts:
            # one slot per bound plus the +Inf overflow slot
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot_value(self) -> dict[str, Any]:
        cumulative, running = {}, 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            cumulative[bound] = running
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": cumulative,
        }


class MetricsRegistry:
    """All instruments of one testbed, addressable by name + labels."""

    def __init__(self) -> None:
        self._instruments: dict[str, CounterMetric | GaugeMetric | HistogramMetric] = {}
        #: Bumped on every :meth:`reset`; run scopes record it so a
        #: delta spanning a reset is discarded instead of going negative.
        self.generation = 0

    # ------------------------------------------------------------ instruments
    def _get_or_make(self, cls, name: str, labels: dict[str, Any], **kwargs):
        key = metric_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name=name, labels=dict(labels), **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {key!r} is a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        return self._get_or_make(CounterMetric, name, labels)

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        return self._get_or_make(GaugeMetric, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: Any
    ) -> HistogramMetric:
        if buckets is None:
            return self._get_or_make(HistogramMetric, name, labels)
        return self._get_or_make(HistogramMetric, name, labels, buckets=tuple(buckets))

    # ---------------------------------------------------------------- queries
    def __iter__(self) -> Iterator[CounterMetric | GaugeMetric | HistogramMetric]:
        return iter(self._instruments.values())

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def get(self, name: str, **labels: Any):
        """The instrument at ``name{labels}``, or None if never touched."""
        return self._instruments.get(metric_key(name, labels))

    def value(self, name: str, default: float = 0, **labels: Any):
        """The scalar value of a counter/gauge (histograms: the count)."""
        instrument = self.get(name, **labels)
        if instrument is None:
            return default
        if isinstance(instrument, HistogramMetric):
            return instrument.count
        return instrument.value

    def sum_across_labels(self, name: str) -> float:
        """Sum one counter/gauge family over every label combination."""
        return sum(
            i.value
            for i in self._instruments.values()
            if i.name == name and not isinstance(i, HistogramMetric)
        )

    def snapshot(self) -> dict[str, Any]:
        """One JSON-shaped mapping of every series to its current value.

        This is the structure the benchmark harness and the ``repro
        metrics`` CLI consume; keys are canonical ``name{labels}`` series
        keys, values are scalars (counter/gauge) or histogram dicts.
        """
        return {
            key: instrument.snapshot_value()
            for key, instrument in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Zero every instrument (the instruments themselves survive)."""
        self.generation += 1
        for instrument in self._instruments.values():
            instrument.reset()
