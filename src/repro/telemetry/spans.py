"""Spans: attributed time intervals on the virtual clock.

A :class:`Span` is one named interval with a party ("source", "target",
"orchestrator", "agent"), an optional track within that party (used when
several enclaves on one party run concurrently — e.g. the per-enclave
two-phase checkpoint threads a VM migration interleaves), parent links,
and free-form attributes.  The :class:`Tracer` keeps one stack per
(party, track) so spans are *well-nested per track by construction*:
``end`` refuses to close a span that is not the innermost open one on its
track.

Spans mirror themselves into the :class:`~repro.sim.trace.EventTrace` as
``("span", "start")`` / ``("span", "end")`` events, so live observers
(the invariant monitor, tests) see them in the causal event stream, and
the timeline reconstructor can fold spans and plain events together.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.clock import VirtualClock
    from repro.sim.trace import EventTrace


@dataclass
class Span:
    """One attributed interval of virtual time."""

    span_id: int
    name: str
    party: str
    track: str
    start_ns: int
    end_ns: int | None = None
    parent_id: int | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} (#{self.span_id}) is still open")
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end_ns}" if self.end_ns is not None else "…"
        return f"<Span #{self.span_id} {self.name} [{self.party}/{self.track}] {self.start_ns}-{end}>"


class SpanError(RuntimeError):
    """A span was closed out of nesting order, or twice."""


@contextmanager
def maybe_span(trace, name: str, party: str = "orchestrator", track: str = "", **attrs: Any):
    """Span against ``trace.tracer`` if one is attached, else a no-op.

    Deep components (SGX library, QEMU monitor) hold a trace but not a
    testbed; this lets them emit spans when the telemetry layer is wired
    without forcing bare-trace unit tests to carry one.
    """
    tracer = getattr(trace, "tracer", None)
    if tracer is None:
        yield None
        return
    with tracer.span(name, party, track, **attrs) as span:
        yield span


class Tracer:
    """Creates and closes spans against one virtual clock."""

    def __init__(self, clock: "VirtualClock", trace: "EventTrace | None" = None) -> None:
        self.clock = clock
        self.trace = trace
        self.spans: list[Span] = []  # every span ever started, in start order
        #: Trace context shared with the wire: the orchestrator stamps a
        #: fresh id per migration run, and every
        #: :meth:`repro.net.network.Network.transfer` copies it onto its
        #: wire record so spans and transfers correlate across parties.
        self.trace_id: str | None = None
        self._ids = itertools.count(1)
        self._stacks: dict[tuple[str, str], list[Span]] = {}
        #: Start-ordered open-span candidates for :meth:`active`; finished
        #: tails are popped lazily so the query stays O(1) amortized.
        self._activation: list[Span] = []

    # ------------------------------------------------------------ start / end
    def start(self, name: str, party: str = "orchestrator", track: str = "", **attrs: Any) -> Span:
        """Open a span now; its parent is the innermost open span on the
        same (party, track)."""
        stack = self._stacks.setdefault((party, str(track)), [])
        span = Span(
            span_id=next(self._ids),
            name=name,
            party=party,
            track=str(track),
            start_ns=self.clock.now_ns,
            parent_id=stack[-1].span_id if stack else None,
            attrs=dict(attrs),
        )
        stack.append(span)
        self.spans.append(span)
        self._activation.append(span)
        if self.trace is not None:
            self.trace.emit(
                "span", "start", span=span.span_id, span_name=name, party=party
            )
        return span

    def end(self, span: Span, status: str = "ok", **attrs: Any) -> Span:
        """Close ``span`` now.  It must be the innermost open span on its
        track — out-of-order closes are a bug in the instrumentation, not
        a recoverable condition."""
        if span.finished:
            raise SpanError(f"span {span.name!r} (#{span.span_id}) ended twice")
        stack = self._stacks.get((span.party, span.track), [])
        if not stack or stack[-1] is not span:
            open_name = stack[-1].name if stack else "<none>"
            raise SpanError(
                f"span {span.name!r} closed out of order on track "
                f"{span.party}/{span.track or '-'} (innermost open: {open_name})"
            )
        stack.pop()
        span.end_ns = self.clock.now_ns
        span.status = status
        span.attrs.update(attrs)
        if self.trace is not None:
            self.trace.emit(
                "span",
                "end",
                span=span.span_id,
                span_name=span.name,
                party=span.party,
                duration_ns=span.duration_ns,
                status=status,
            )
        return span

    @contextmanager
    def span(self, name: str, party: str = "orchestrator", track: str = "", **attrs: Any):
        """Context manager form; an escaping exception marks status="error"."""
        span = self.start(name, party, track, **attrs)
        try:
            yield span
        except BaseException as exc:
            self.end(span, status="error", error=type(exc).__name__)
            raise
        else:
            self.end(span)

    # ---------------------------------------------------------------- queries
    def current(self, party: str = "orchestrator", track: str = "") -> Span | None:
        stack = self._stacks.get((party, str(track)))
        return stack[-1] if stack else None

    def active(self) -> Span | None:
        """The most recently started span that is still open, any track.

        This is what the network stamps onto a wire record as the
        transfer's causal parent: in the single-threaded simulation the
        innermost open span *is* the activity performing the send.
        """
        while self._activation and self._activation[-1].finished:
            self._activation.pop()
        return self._activation[-1] if self._activation else None

    def finished(self) -> list[Span]:
        return [s for s in self.spans if s.finished]

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if not s.finished]

    def find(self, name: str, party: str | None = None) -> list[Span]:
        return [
            s
            for s in self.spans
            if s.name == name and (party is None or s.party == party) and s.finished
        ]

    def first(self, name: str, party: str | None = None) -> Span | None:
        found = self.find(name, party)
        return found[0] if found else None

    def last(self, name: str, party: str | None = None) -> Span | None:
        found = self.find(name, party)
        return found[-1] if found else None

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> Iterator[Span]:
        return (s for s in self.spans if s.parent_id is None)

    def clear(self) -> None:
        """Drop recorded spans (open spans on the stacks survive)."""
        open_ids = {s.span_id for stack in self._stacks.values() for s in stack}
        self.spans = [s for s in self.spans if s.span_id in open_ids]
        self._activation = [s for s in self.spans if not s.finished]
