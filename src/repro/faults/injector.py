"""Interpreting a :class:`FaultPlan` against a live testbed.

The injector sits on the seams the seed codebase already has — the
:class:`~repro.net.network.Network` (which every protocol byte crosses)
and the orchestrator's per-step hooks — and turns plan entries into
concrete misbehaviour: raised :class:`~repro.errors.LinkTimeout` /
:class:`~repro.errors.LinkPartitioned`, mutated payloads, extra clock
charges, duplicated wire records, and :class:`~repro.errors.MachineCrash`
at step boundaries.

Everything is deterministic: corruption offsets come from a
:class:`~repro.sim.rng.DeterministicRng` forked from the plan seed, and
every fault fires exactly once.  Each injected event is mirrored into the
event trace under category ``"fault"`` so experiments can correlate
degraded-mode overhead with exactly what the infrastructure did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import LinkPartitioned, LinkTimeout, MachineCrash, PartyCrash
from repro.faults.plan import (
    KIND_CORRUPT,
    KIND_DELAY,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_REORDER,
    FaultPlan,
    MessageFault,
)
from repro.sim.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.migration.testbed import Testbed
    from repro.net.network import Network


class FaultInjector:
    """Binds one :class:`FaultPlan` to one testbed's network and clock."""

    def __init__(
        self,
        plan: FaultPlan,
        drop_timeout_ns: int = 10_000_000,
        reorder_delay_ns: int = 1_000_000,
    ) -> None:
        self.plan = plan
        #: Wait-for-an-ack-that-never-comes charge on a dropped message.
        self.drop_timeout_ns = drop_timeout_ns
        #: A reorder on a lockstep (request/response) label cannot change
        #: what arrives, only when: it degrades to one extra round trip.
        self.reorder_delay_ns = reorder_delay_ns
        self._rng = DeterministicRng(plan.seed).fork("fault-injector")
        self._delivery_seq: dict[str, int] = {}
        self._attempt_seq: dict[str, int] = {}
        self._tb: "Testbed | None" = None

    # ------------------------------------------------------------- wiring
    def attach(self, testbed: "Testbed") -> "FaultInjector":
        """Install this injector on the testbed's network and journals."""
        self._tb = testbed
        testbed.network.injector = self
        durable = getattr(testbed, "durable", None)
        if durable is not None:
            durable.injector = self
        return self

    def detach(self) -> None:
        if self._tb is not None:
            self._tb.network.injector = None
            durable = getattr(self._tb, "durable", None)
            if durable is not None and durable.injector is self:
                durable.injector = None
            self._tb = None

    @property
    def _clock(self):
        return self._tb.clock

    @property
    def _trace(self):
        return self._tb.trace

    # ------------------------------------------------------------- network hooks
    def link_check(self, label: str) -> None:
        """Called before a transfer enters the wire; models partitions."""
        now = self._clock.now_ns
        self._attempt_seq[label] = self._attempt_seq.get(label, 0) + 1
        for fault in self.plan.partition_faults:
            if fault.started_at_ns is None:
                matches = fault.label is None or fault.label == label
                if matches and self._attempt_seq[label] >= fault.nth:
                    fault.started_at_ns = now
                    self._trace.emit(
                        "fault", "partition_start",
                        label=label, duration_ns=fault.duration_ns,
                    )
            if fault.started_at_ns is not None:
                heals_at = fault.started_at_ns + fault.duration_ns
                if now < heals_at:
                    self._trace.emit("fault", "partition_blocked", label=label)
                    raise LinkPartitioned(
                        f"link partitioned ({label!r} blocked for another "
                        f"{(heals_at - now) / 1e6:.1f} ms)",
                        heals_at_ns=heals_at,
                    )

    def deliver(self, label: str, payload: bytes, network: "Network") -> bytes:
        """Called after wire accounting; applies message-level faults."""
        seq = self._delivery_seq.get(label, 0) + 1
        self._delivery_seq[label] = seq
        # The wire record under delivery is the last one logged; its
        # global sequence number ties each fault event to the exact wire
        # node the causal DAG builds from the record.
        wire_seq = network.log[-1].seq if network.log else None
        delivered = payload
        for fault in self._matching(label, seq):
            fault.spent = True
            if fault.kind == KIND_DROP:
                self._trace.emit("fault", "drop", label=label, nth=seq, wire_seq=wire_seq)
                self._clock.advance(self.drop_timeout_ns)
                raise LinkTimeout(f"message {label!r} #{seq} was dropped on the wire")
            if fault.kind == KIND_DUPLICATE:
                # The wire carried the bytes twice; the receiver sees two
                # identical deliveries (the resumable transfer must treat
                # the second as a no-op).
                network.record_duplicate(label, delivered)
                self._trace.emit(
                    "fault", "duplicate", label=label, nth=seq, wire_seq=wire_seq
                )
            elif fault.kind == KIND_CORRUPT:
                delivered = self._corrupt(delivered)
                self._trace.emit(
                    "fault", "corrupt", label=label, nth=seq, wire_seq=wire_seq
                )
            elif fault.kind == KIND_DELAY:
                self._clock.advance(fault.delay_ns)
                self._trace.emit(
                    "fault",
                    "delay",
                    label=label,
                    nth=seq,
                    delay_ns=fault.delay_ns,
                    wire_seq=wire_seq,
                )
            elif fault.kind == KIND_REORDER:
                # Stream reorders are applied by chunk_send_order(); one
                # that survives to delivery is on a lockstep label.
                self._clock.advance(self.reorder_delay_ns)
                self._trace.emit(
                    "fault", "reorder_as_delay", label=label, nth=seq, wire_seq=wire_seq
                )
        return delivered

    def _matching(self, label: str, seq: int) -> list[MessageFault]:
        return [
            f
            for f in self.plan.message_faults
            if not f.spent and f.label == label and f.nth == seq
        ]

    def _corrupt(self, payload: bytes) -> bytes:
        if not payload:
            return payload
        mutated = bytearray(payload)
        index = self._rng.randint(0, len(mutated) - 1)
        mask = 1 << self._rng.randint(0, 7)
        mutated[index] ^= mask
        return bytes(mutated)

    # ------------------------------------------------------------- stream hooks
    def chunk_send_order(self, label: str, n_messages: int) -> list[int]:
        """Consume reorder faults for a message stream under one label.

        Returns the permutation of ``range(n_messages)`` the sender should
        use, swapping the N-th and (N+1)-th entries for each matching
        reorder fault — the wire genuinely carries the stream out of
        order, and the receiver's reassembler has to cope.
        """
        order = list(range(n_messages))
        for fault in self.plan.message_faults:
            if fault.spent or fault.kind != KIND_REORDER or fault.label != label:
                continue
            if fault.nth <= n_messages - 1:
                i = fault.nth - 1
                order[i], order[i + 1] = order[i + 1], order[i]
                fault.spent = True
                self._trace.emit("fault", "reorder", label=label, nth=fault.nth)
        return order

    # ------------------------------------------------------------- step hooks
    def step_started(self, step: str) -> None:
        """Orchestrator hook: raises MachineCrash if the plan says so."""
        for fault in self.plan.crash_faults:
            if not fault.spent and fault.step == step:
                fault.spent = True
                self._trace.emit("fault", "crash", side=fault.side, step=step)
                raise MachineCrash(fault.side, step)

    # ------------------------------------------------------------- journal hooks
    def record_appended(self, party: str, journal: str, counter: int) -> None:
        """Journal hook: crash ``party`` right after a record commits.

        Fires *after* the monotonic-counter bump, so the committed record
        always survives the crash — the sweep visits the window between
        each pair of adjacent commits.
        """
        if self._tb is None:
            return
        for fault in self.plan.record_crash_faults:
            if not fault.spent and fault.party == party and fault.at_record == counter:
                fault.spent = True
                self._trace.emit(
                    "fault", "party_crash", party=party, journal=journal, record=counter
                )
                raise PartyCrash(party, counter, journal)
