"""Deterministic fault injection for the migration protocol.

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a seedable, declarative
  schedule of infrastructure faults (message drop/duplicate/reorder/
  corrupt/delay, endpoint crashes at protocol steps, party crashes at
  journal-record boundaries, link partitions).
* :mod:`repro.faults.injector` — :class:`FaultInjector`: binds a plan to
  a testbed's network, clock and orchestrator hooks.

The subsystem answers the question the happy-path tests cannot: when a
hostile (or merely broken) infrastructure interrupts a migration at an
arbitrary point, does the protocol still uphold *abort-only* semantics —
every run ends either completed or cleanly aborted, with exactly one
live enclave lineage and the self-destroy invariant intact?
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    MESSAGE_FAULT_KINDS,
    MIGRATION_PARTIES,
    PROTOCOL_STEPS,
    STEP_BUILD_TARGET,
    STEP_CHECKPOINT,
    STEP_ESTABLISH_CHANNEL,
    STEP_HANDOFF_KEY,
    STEP_RESTORE,
    STEP_TRANSFER_CHECKPOINT,
    CrashFault,
    FaultPlan,
    MessageFault,
    PartitionFault,
    RecordCrashFault,
    parse_fault_spec,
)

__all__ = [
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "MESSAGE_FAULT_KINDS",
    "MIGRATION_PARTIES",
    "MessageFault",
    "PROTOCOL_STEPS",
    "PartitionFault",
    "RecordCrashFault",
    "STEP_BUILD_TARGET",
    "STEP_CHECKPOINT",
    "STEP_ESTABLISH_CHANNEL",
    "STEP_HANDOFF_KEY",
    "STEP_RESTORE",
    "STEP_TRANSFER_CHECKPOINT",
    "parse_fault_spec",
]
