"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a declarative description of everything the
infrastructure will do wrong during one migration: drop / duplicate /
reorder / corrupt / delay the N-th message of a label, crash the source
or target machine as a protocol step begins, or sever the link for a
window of virtual time.  The plan is pure data — interpretation happens
in :mod:`repro.faults.injector` — so the same plan replayed against the
same seed produces byte-identical behaviour, which is what lets the
adversarial test matrix assert exact outcomes.

The paper's threat model (§V) already grants the adversary the wire;
this module grants it *timing*: the ability to fail the migration at any
step.  The protocol's obligation is unchanged — abort is acceptable,
leak / fork / rollback are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Protocol step names, in flow order.  Crash points reference these.
STEP_CHECKPOINT = "checkpoint"
STEP_BUILD_TARGET = "build-target"
STEP_ESTABLISH_CHANNEL = "establish-channel"
STEP_TRANSFER_CHECKPOINT = "transfer-checkpoint"
STEP_HANDOFF_STORAGE = "handoff-storage"
STEP_HANDOFF_KEY = "handoff-key"
STEP_RESTORE = "restore"

PROTOCOL_STEPS = (
    STEP_CHECKPOINT,
    STEP_BUILD_TARGET,
    STEP_ESTABLISH_CHANNEL,
    STEP_TRANSFER_CHECKPOINT,
    STEP_HANDOFF_STORAGE,
    STEP_HANDOFF_KEY,
    STEP_RESTORE,
)

#: Message-fault kinds understood by the injector.
KIND_DROP = "drop"
KIND_DUPLICATE = "duplicate"
KIND_REORDER = "reorder"
KIND_CORRUPT = "corrupt"
KIND_DELAY = "delay"

MESSAGE_FAULT_KINDS = (KIND_DROP, KIND_DUPLICATE, KIND_REORDER, KIND_CORRUPT, KIND_DELAY)


@dataclass
class MessageFault:
    """One fault applied to the N-th transfer carrying ``label``.

    ``nth`` is 1-based over the transfers of that label only.  Each fault
    fires exactly once; ``spent`` tracks consumption so a retried
    protocol does not re-suffer the same fault (the model is a transient
    infrastructure glitch, not a deterministic filter).
    """

    kind: str
    label: str
    nth: int = 1
    #: For ``delay``: extra virtual time charged before delivery.
    delay_ns: int = 5_000_000
    spent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in MESSAGE_FAULT_KINDS:
            raise ValueError(f"unknown message-fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError("nth is 1-based")


@dataclass
class CrashFault:
    """Crash ``side`` ("source" or "target") as protocol step begins."""

    side: str
    step: str
    spent: bool = False

    def __post_init__(self) -> None:
        if self.side not in ("source", "target"):
            raise ValueError(f"crash side must be source/target, got {self.side!r}")
        if self.step not in PROTOCOL_STEPS:
            raise ValueError(f"unknown protocol step {self.step!r}")


#: Parties addressable by record-granularity crash faults (the four
#: journal writers; see :mod:`repro.durability.wal`).
MIGRATION_PARTIES = ("source", "target", "orchestrator", "agent")


@dataclass
class RecordCrashFault:
    """Crash ``party`` right after it commits journal record ``at_record``.

    This is the record-granularity refinement of :class:`CrashFault`: the
    crash point is a *durability* boundary, not a protocol step, so a
    sweep over ``at_record`` visits every window between two committed
    records.  The record itself always survives (the injector fires after
    the monotonic-counter bump), which is exactly the contract recovery
    relies on.
    """

    party: str
    at_record: int
    spent: bool = False

    def __post_init__(self) -> None:
        if self.party not in MIGRATION_PARTIES:
            raise ValueError(
                f"crash party must be one of {MIGRATION_PARTIES}, got {self.party!r}"
            )
        if self.at_record < 1:
            raise ValueError("at_record is 1-based")


@dataclass
class PartitionFault:
    """Sever the link for ``duration_ns`` of virtual time.

    The partition begins when the ``nth`` transfer matching ``label``
    (any label when ``None``) is *attempted*; that transfer and every
    later one fail with :class:`~repro.errors.LinkPartitioned` until the
    virtual clock passes the healing time.
    """

    duration_ns: int
    label: str | None = None
    nth: int = 1
    started_at_ns: int | None = None

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError("partition duration must be positive")
        if self.nth < 1:
            raise ValueError("nth is 1-based")


@dataclass
class FaultPlan:
    """A deterministic schedule of infrastructure faults.

    Build one with the fluent helpers::

        plan = (FaultPlan(seed=7)
                .drop("kmigrate")
                .corrupt("checkpoint-chunk", nth=3)
                .crash("target", STEP_RESTORE))

    and hand it to a :class:`~repro.faults.injector.FaultInjector`.
    """

    seed: int | str = 0
    message_faults: list[MessageFault] = field(default_factory=list)
    crash_faults: list[CrashFault] = field(default_factory=list)
    partition_faults: list[PartitionFault] = field(default_factory=list)
    record_crash_faults: list[RecordCrashFault] = field(default_factory=list)

    # ------------------------------------------------------------- builders
    def drop(self, label: str, nth: int = 1) -> "FaultPlan":
        self.message_faults.append(MessageFault(KIND_DROP, label, nth))
        return self

    def duplicate(self, label: str, nth: int = 1) -> "FaultPlan":
        self.message_faults.append(MessageFault(KIND_DUPLICATE, label, nth))
        return self

    def reorder(self, label: str, nth: int = 1) -> "FaultPlan":
        """Swap the N-th and (N+1)-th messages of ``label`` on the wire.

        Only a stream of messages under one label (the chunked checkpoint
        transfer) has an observable order; for lockstep request/response
        labels a reorder degrades to a delay of one round trip.
        """
        self.message_faults.append(MessageFault(KIND_REORDER, label, nth))
        return self

    def corrupt(self, label: str, nth: int = 1) -> "FaultPlan":
        self.message_faults.append(MessageFault(KIND_CORRUPT, label, nth))
        return self

    def delay(self, label: str, nth: int = 1, delay_ns: int = 5_000_000) -> "FaultPlan":
        self.message_faults.append(MessageFault(KIND_DELAY, label, nth, delay_ns=delay_ns))
        return self

    def crash(self, side: str, step: str) -> "FaultPlan":
        self.crash_faults.append(CrashFault(side, step))
        return self

    def crash_at_record(self, party: str, at_record: int) -> "FaultPlan":
        self.record_crash_faults.append(RecordCrashFault(party, at_record))
        return self

    def partition(
        self, duration_ns: int, label: str | None = None, nth: int = 1
    ) -> "FaultPlan":
        self.partition_faults.append(PartitionFault(duration_ns, label, nth))
        return self

    # ------------------------------------------------------------- queries
    def describe(self) -> str:
        """Human-readable one-liner (CLI output and trace payloads)."""
        parts = [f"{f.kind}:{f.label}:{f.nth}" for f in self.message_faults]
        parts += [f"crash:{f.side}:{f.step}" for f in self.crash_faults]
        parts += [
            f"partition:{f.label or '*'}:{f.nth}:{f.duration_ns}ns"
            for f in self.partition_faults
        ]
        parts += [
            f"crash-record:{f.party}:{f.at_record}" for f in self.record_crash_faults
        ]
        return ",".join(parts) if parts else "none"

    @property
    def empty(self) -> bool:
        return not (
            self.message_faults
            or self.crash_faults
            or self.partition_faults
            or self.record_crash_faults
        )


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a comma-separated CLI fault spec into a plan.

    Grammar per item::

        drop|duplicate|reorder|corrupt|delay : LABEL [: NTH]
        crash : source|target : STEP
        crash-record : PARTY : RECORD_NO [+ PARTY : RECORD_NO ...]
        partition : DURATION_MS [: LABEL [: NTH]]

    The ``+``-joined crash-record form schedules a *crash pair* (or
    longer chain): the first crash fires during the original migration,
    each subsequent one during the recovery the previous crash forced —
    ``crash-record:source:2+target:3`` crashes the source after its 2nd
    record, then crashes the target after its 3rd record mid-recovery.
    """
    plan = FaultPlan()
    for item in filter(None, (s.strip() for s in spec.split(","))):
        fields = item.split(":")
        kind = fields[0]
        if kind in MESSAGE_FAULT_KINDS:
            if len(fields) < 2:
                raise ValueError(f"{kind} needs a label: {item!r}")
            nth = int(fields[2]) if len(fields) > 2 else 1
            plan.message_faults.append(MessageFault(kind, fields[1], nth))
        elif kind == "crash":
            if len(fields) != 3:
                raise ValueError(f"crash needs side and step: {item!r}")
            plan.crash(fields[1], fields[2])
        elif kind == "crash-record":
            remainder = item.split(":", 1)[1] if ":" in item else ""
            points = [p.strip() for p in remainder.split("+")]
            if not remainder or not all(points):
                raise ValueError(
                    f"crash-record needs party:record pairs joined by '+': {item!r}"
                )
            for point in points:
                pair = point.split(":")
                if len(pair) != 2:
                    raise ValueError(
                        f"crash-record point must be PARTY:RECORD_NO, got {point!r}"
                    )
                plan.crash_at_record(pair[0], int(pair[1]))
        elif kind == "partition":
            if len(fields) < 2:
                raise ValueError(f"partition needs a duration in ms: {item!r}")
            duration_ns = int(float(fields[1]) * 1_000_000)
            label = fields[2] if len(fields) > 2 else None
            nth = int(fields[3]) if len(fields) > 3 else 1
            plan.partition(duration_ns, label, nth)
        else:
            raise ValueError(f"unknown fault kind {kind!r} in {item!r}")
    return plan
