"""Exception hierarchy for the whole reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch at the granularity they care about (a single instruction fault, a
protocol violation, or anything from this library at all).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# SGX hardware model faults
# ---------------------------------------------------------------------------

class SgxError(ReproError):
    """Base class for faults raised by the simulated SGX hardware."""


class SgxAccessFault(SgxError):
    """Software touched memory the SGX access rules forbid.

    Raised when non-enclave code reads or writes an EPC page, when one
    enclave touches another enclave's pages, or when software reads a
    hardware-only structure field (e.g. ``TCS.cssa``).
    """


class SgxInstructionFault(SgxError):
    """An SGX instruction was executed with illegal operands or state."""


class EnclavePageFault(SgxError):
    """An enclave touched one of its pages that is currently evicted.

    The (untrusted) OS handles this by loading the page back with ELDB,
    after which the access is retried — the control thread relies on this
    when it scans enclave memory during checkpointing (§IV-B).
    """

    def __init__(self, vaddr: int) -> None:
        super().__init__(f"enclave page fault at 0x{vaddr:x}")
        self.vaddr = vaddr


class SgxMacMismatch(SgxError):
    """An evicted page or report failed its cryptographic MAC check.

    This is the hardware fact the paper is built on: a page evicted with
    EWB on one CPU cannot be loaded with ELDB on another CPU because the
    page-encryption key never leaves the processor.
    """


class SgxVersionMismatch(SgxError):
    """An ELDB/ELDU found a stale version number (anti-replay check)."""


class SgxEpcExhausted(SgxError):
    """No free EPC page is available and eviction was not possible."""


# ---------------------------------------------------------------------------
# Virtualization stack
# ---------------------------------------------------------------------------

class HypervisorError(ReproError):
    """Base class for hypervisor (KVM model) errors."""


class EptViolation(HypervisorError):
    """A guest access missed in the extended page tables."""


class GuestOsError(ReproError):
    """Base class for guest-OS model errors."""


class NoSuchEnclave(GuestOsError):
    """An enclave id was used after destruction or was never created."""


# ---------------------------------------------------------------------------
# Network and injected infrastructure faults
# ---------------------------------------------------------------------------

class NetworkFault(ReproError):
    """Base class for transport-level failures on the migration link.

    These model *infrastructure* misbehaviour (lost packets, a severed
    link), not adversarial tampering: tampering is silent and must be
    caught cryptographically, while a fault is loud — the sender observes
    a missing acknowledgement and may retry.
    """


class LinkTimeout(NetworkFault):
    """A transfer was never acknowledged (dropped message or dead peer)."""


class LinkPartitioned(NetworkFault):
    """The migration link is currently down; transfers cannot start."""

    def __init__(self, message: str, heals_at_ns: int = 0) -> None:
        super().__init__(message)
        #: Virtual time at which the partition is scheduled to heal
        #: (0 when unknown); retry loops use it only for tracing.
        self.heals_at_ns = heals_at_ns


class MachineCrash(ReproError):
    """An injected endpoint crash: the machine's volatile state is gone.

    Enclave memory never survives a machine crash (EPC keys are per-boot),
    so a crashed endpoint loses every enclave it hosted.
    """

    def __init__(self, side: str, step: str) -> None:
        super().__init__(f"{side} machine crashed at protocol step {step!r}")
        self.side = side
        self.step = step


class PartyCrash(ReproError):
    """A migration party crashed at a journal-record boundary.

    Unlike :class:`MachineCrash` (which the orchestrator's retry loop
    heals in place), a party crash terminates the whole protocol driver:
    the run stops where it stands and only
    :class:`repro.durability.recovery.MigrationRecovery` — reading the
    write-ahead journals — may continue or finalize the migration.
    """

    def __init__(self, party: str, record: int, journal: str = "") -> None:
        super().__init__(
            f"party {party!r} crashed after committing journal record #{record}"
            + (f" of {journal!r}" if journal else "")
        )
        self.party = party
        self.record = record
        self.journal = journal


# ---------------------------------------------------------------------------
# Durability (write-ahead journal) and runtime invariants
# ---------------------------------------------------------------------------

class DurabilityError(ReproError):
    """Base class for write-ahead-journal failures."""


class JournalCorrupt(DurabilityError):
    """A journal frame failed its CRC or the record stream is malformed."""


class JournalRolledBack(DurabilityError):
    """The journal is older than the hardware monotonic counter says it
    must be: someone truncated it or substituted an earlier copy.  A
    rolled-back journal is *refused*, never best-effort recovered — the
    counter exists precisely so stale state cannot be replayed
    (the Alder et al. rollback defense)."""


class RecoveryError(DurabilityError):
    """Crash recovery could not reconstruct a safe state from the journal."""


class SealedStorageError(DurabilityError):
    """Base class for migratable sealed-storage refusals.

    The storage namespace carries a service's persistent state across
    migrations; anything suspicious about it is *refused* with a subclass
    of this error, never repaired silently.
    """


class StorageRolledBack(SealedStorageError):
    """A sealed-storage blob is older than its monotonic version counter.

    Someone restored a stale copy of the sealed table (or replayed a
    pre-migration one on the source after the namespace moved): the
    durable version counter only moves forward, so the mismatch is
    detectable and the open is refused (CTR / Alder et al. defense,
    extended across the migration boundary).
    """


class StorageRetired(SealedStorageError):
    """The sealed-storage namespace was handed off to another host.

    Set at the migration's point of no return: a resumed or rebuilt
    source that tries to touch the namespace afterwards would fork the
    counter lineage, so the access is refused outright.
    """


class InvariantViolation(ReproError):
    """The live invariant monitor observed a broken safety property.

    In a correct run this never fires; it firing *is* the bug report —
    more than one live instance of a migrated lineage, execution after
    self-destroy, a double escrow release, or a software-readable CSSA.
    """


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for crypto-substrate errors."""


class IntegrityError(CryptoError):
    """A MAC or digest check failed; the payload must be discarded."""


class SignatureError(CryptoError):
    """A public-key signature failed verification."""


# ---------------------------------------------------------------------------
# Attestation
# ---------------------------------------------------------------------------

class AttestationError(ReproError):
    """Local or remote attestation failed."""


class QuoteRejected(AttestationError):
    """The attestation service rejected a quote."""


# ---------------------------------------------------------------------------
# Migration protocol
# ---------------------------------------------------------------------------

class MigrationError(ReproError):
    """Base class for migration-protocol failures."""


class MigrationAborted(MigrationError):
    """The migration was cancelled before the point of no return."""


class ChannelError(MigrationError):
    """The migration secure channel could not be established or was reused."""


class StepTimeout(MigrationError):
    """A protocol step exceeded its per-step budget (e.g. a wedged
    control thread that never reaches the quiescent point)."""

    def __init__(self, step: str, detail: str = "") -> None:
        super().__init__(f"step {step!r} timed out{': ' + detail if detail else ''}")
        self.step = step


class ChunkError(MigrationError):
    """A checkpoint chunk arrived malformed or failed its frame digest.

    Chunk framing is an untrusted transport detail — a bad chunk is
    retransmitted, never trusted; end-to-end integrity still rests on the
    sealed envelope's MAC, which only the enclave verifies.
    """


class SelfDestroyed(MigrationError):
    """An operation was attempted on an enclave that has self-destroyed.

    After the source enclave hands the migration key to the (single,
    attested) target, it refuses to ever run again; any ecall raises this.
    """


class ConsistencyViolation(MigrationError):
    """A checkpoint failed its consistency verification.

    In a correct run this never fires; the attack tests assert that a
    *broken* (single-phase) checkpointer produces it while the paper's
    two-phase scheme does not.
    """


class HandoffReplayed(MigrationError):
    """A sealed-storage handoff blob was presented more than once.

    The export is bound to one channel sequence; importing it a second
    time (a replayed `handoff-storage` message, or the same blob fed to
    two targets) would fork the storage lineage and is refused.
    """


class RestoreError(MigrationError):
    """The target enclave could not be restored from the checkpoint."""


class CssaMismatch(RestoreError):
    """Tracked CSSA disagrees with the checkpoint after restore (step 4)."""
