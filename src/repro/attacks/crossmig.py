"""Cross-migration attacks on the sealed-storage handoff, executable.

Migratable sealed storage gives the untrusted operator a new toy box:
the namespace blob sits on a disk the operator owns, the handoff blob
crosses a network the operator runs, and "the same enclave" exists on
two machines in sequence.  Each scenario here mounts one attack from
that box and demands the same verdict the rest of the playbook demands:
the attack is *detected and refused with a typed error* — never a
silent success, never a fork, and the legitimate lineage keeps its
state.

* :func:`run_storage_rollback_attack`  — restore a stale sealed-table
  blob after the storage migrated away and back; the monotonic version
  counter must refuse it (:class:`~repro.errors.StorageRolledBack`).
* :func:`run_counter_fork_attack`      — relaunch the image on the
  retired source host and use its old namespace; the retired tombstone
  must refuse it (:class:`~repro.errors.StorageRetired`) — while a
  *legitimate* return migration un-retires the host.
* :func:`run_stale_checkpoint_attack`  — a malicious migration driver
  withholds the negotiated storage handoff, pairing a fresh checkpoint
  with a stale (empty) namespace; the target must refuse to go live
  (:class:`~repro.errors.StorageRolledBack`).
* :func:`run_handoff_replay_attack`    — replay the captured handoff
  blob at the target; the handoff sequence counter must refuse it
  (:class:`~repro.errors.HandoffReplayed`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.durability import wal
from repro.durability.sweep import COUNTER_START, build_sweep_app
from repro.errors import (
    HandoffReplayed,
    SealedStorageError,
    StorageRetired,
    StorageRolledBack,
)
from repro.migration.chain import hop_view
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.sdk import control
from repro.sdk.host import HostApplication


@dataclass
class CrossMigrationOutcome:
    """One cross-migration attack's verdict."""

    attack: str
    #: The attack was refused with a typed error (never silently absorbed).
    blocked: bool
    #: Class name of the refusal, e.g. ``"StorageRolledBack"``.
    refusal: str = ""
    detail: str = ""
    #: The legitimate instance still serves the correct workload +
    #: storage state after the attack.
    state_intact: bool = False


def _put_secrets(app: HostApplication, upto: int) -> None:
    for n in range(1, upto + 1):
        app.library.control_call(control.storage_put, "failed-logins", n)


def _storage_ok(app: HostApplication, expect: int) -> bool:
    try:
        counter = app.ecall_once(0, "read")
        stored = app.library.control_call(control.storage_get, "failed-logins")
    except SealedStorageError:
        return False
    return counter == COUNTER_START and stored == expect


def run_storage_rollback_attack(seed: int | str = 41) -> CrossMigrationOutcome:
    """Roll the source host's sealed table back across a migration cycle.

    The operator snapshots the namespace blob at version 1, lets the
    enclave advance to version 3, migrates it away and back (so the
    namespace legitimately lives on the original host again), then
    swaps in the stale snapshot.  The blob authenticates — it *is* a
    genuine sealed table for this enclave on this CPU — but the version
    counter has moved on, and the read must refuse.
    """
    tb = build_testbed(seed=seed)
    app = build_sweep_app(tb)
    ns = wal.storage_namespace(tb.source.name, app.image.name)

    _put_secrets(app, 1)
    stale_blob = bytes(tb.durable.log(ns))  # the operator's disk snapshot
    _put_secrets(app, 3)

    # Hop there and back: the namespace retires on the source, migrates
    # to the target, and re-binds to the source on the return hop.
    result = MigrationOrchestrator(hop_view(tb, 1)).migrate_enclave(app)
    back = MigrationOrchestrator(hop_view(tb, 2)).migrate_enclave(result.target_app)
    home = back.target_app

    tb.durable.set_log(ns, stale_blob)  # the attack: restore the snapshot
    try:
        home.library.control_call(control.storage_get, "failed-logins")
    except StorageRolledBack as exc:
        return CrossMigrationOutcome(
            attack="storage-rollback",
            blocked=True,
            refusal=type(exc).__name__,
            detail=str(exc),
            # The refusal is durable, not destructive: the legitimate
            # blob is still on disk for the operator to put back.
            state_intact=home.ecall_once(0, "read") == COUNTER_START,
        )
    return CrossMigrationOutcome(
        attack="storage-rollback",
        blocked=False,
        detail="stale sealed table was served silently",
    )


def run_counter_fork_attack(seed: int | str = 42) -> CrossMigrationOutcome:
    """Relaunch the image on the retired source and use its namespace.

    After the handoff the source host still has the (authentic!) sealed
    table and counters on disk.  The operator relaunches the same image
    there, hoping the fresh instance picks the namespace up and forks
    the counter lineage.  The retired tombstone must refuse both reads
    and writes — and the *legitimate* return migration must un-retire
    the host, or reuse would be impossible.
    """
    tb = build_testbed(seed=seed)
    app = build_sweep_app(tb)
    _put_secrets(app, 3)
    result = MigrationOrchestrator(hop_view(tb, 1)).migrate_enclave(app)

    # The fork: a virgin same-image instance on the retired source host.
    fork = HostApplication(
        tb.source, tb.source_os, app.image, [], owner=tb.owner
    ).launch()
    try:
        fork.library.control_call(control.storage_get, "failed-logins")
    except StorageRetired as exc:
        refusal, detail = type(exc).__name__, str(exc)
    else:
        return CrossMigrationOutcome(
            attack="counter-fork",
            blocked=False,
            detail="a relaunched instance read the retired namespace",
        )
    try:
        fork.library.control_call(control.storage_put, "failed-logins", 0)
        return CrossMigrationOutcome(
            attack="counter-fork",
            blocked=False,
            detail="a relaunched instance wrote the retired namespace",
        )
    except StorageRetired:
        pass
    fork.destroy()

    # Soundness: the legitimate enclave migrating home un-retires the
    # namespace (the strictly increasing handoff sequence outruns the
    # retirement tombstone).
    back = MigrationOrchestrator(hop_view(tb, 2)).migrate_enclave(result.target_app)
    return CrossMigrationOutcome(
        attack="counter-fork",
        blocked=True,
        refusal=refusal,
        detail=detail,
        state_intact=_storage_ok(back.target_app, 3),
    )


class _StorageWithholdingOrchestrator(MigrationOrchestrator):
    """A malicious driver that skips the negotiated storage handoff."""

    def storage_pending(self, app: HostApplication) -> bool:
        return False


def run_stale_checkpoint_attack(seed: int | str = 43) -> CrossMigrationOutcome:
    """Pair a fresh checkpoint with a stale storage namespace.

    The negotiation is the orchestrator's call, and the orchestrator is
    untrusted: here it simply never ships the storage.  The checkpoint
    itself binds the storage version it was taken at, so the target —
    whose namespace never advanced — must refuse to go live rather than
    resume the workload against rolled-back persistent state.
    """
    tb = build_testbed(seed=seed)
    app = build_sweep_app(tb)
    _put_secrets(app, 3)
    orch = _StorageWithholdingOrchestrator(tb)
    try:
        orch.migrate_enclave(app)
    except StorageRolledBack as exc:
        return CrossMigrationOutcome(
            attack="stale-checkpoint",
            blocked=True,
            refusal=type(exc).__name__,
            detail=str(exc),
            # Refusal beats availability: the source is SPENT and the
            # target never went live — but no instance serves stale
            # state, and the namespace is intact for recovery.
            state_intact=tb.durable.counter(
                wal.storage_namespace(tb.source.name, app.image.name)
            )
            == 3,
        )
    return CrossMigrationOutcome(
        attack="stale-checkpoint",
        blocked=False,
        detail="target went live without the storage handoff",
    )


class _ReplayingOrchestrator(MigrationOrchestrator):
    """A malicious driver that re-sends the handoff blob it just delivered.

    The replay has to land while the session is still open — once the
    target goes live the session key is wiped and a replay dies as a
    :class:`~repro.errors.ChannelError` before any storage logic runs.
    Inside the window the blob authenticates, so the handoff sequence
    counter is the defense under test.
    """

    replay_refusal: Exception | None = None

    def handoff_storage(self, app, target_app):
        version = super().handoff_storage(app, target_app)
        sealed = self.tb.network.captured("storage-handoff")[-1]
        try:
            target_app.library.control_call(control.target_import_storage, sealed)
        except HandoffReplayed as exc:
            self.replay_refusal = exc
        return version


def run_handoff_replay_attack(seed: int | str = 44) -> CrossMigrationOutcome:
    """Replay the captured storage-handoff blob at the target.

    The wire is the operator's: the handoff blob is theirs to keep and
    re-send.  The blob authenticates under the session key, but its
    channel sequence was consumed by the first import — the handoff
    counter must refuse the second, and the refusal must not derail the
    legitimate migration happening around it.
    """
    tb = build_testbed(seed=seed)
    app = build_sweep_app(tb)
    _put_secrets(app, 3)
    orch = _ReplayingOrchestrator(tb)
    result = orch.migrate_enclave(app)
    target = result.target_app

    if orch.replay_refusal is None:
        return CrossMigrationOutcome(
            attack="handoff-replay",
            blocked=False,
            detail="the target imported the same handoff twice",
        )
    # Defense in depth: after go-live the same replay dies even earlier,
    # at the (now torn down) session channel.
    from repro.errors import ChannelError

    try:
        target.library.control_call(
            control.target_import_storage, tb.network.captured("storage-handoff")[-1]
        )
        return CrossMigrationOutcome(
            attack="handoff-replay",
            blocked=False,
            detail="a post-migration replay was imported",
        )
    except (ChannelError, HandoffReplayed):
        pass
    return CrossMigrationOutcome(
        attack="handoff-replay",
        blocked=True,
        refusal=type(orch.replay_refusal).__name__,
        detail=str(orch.replay_refusal),
        state_intact=_storage_ok(target, 3),
    )


#: The whole matrix, in one call (CLI + CI entry point).
CROSS_MIGRATION_ATTACKS = {
    "storage-rollback": run_storage_rollback_attack,
    "counter-fork": run_counter_fork_attack,
    "stale-checkpoint": run_stale_checkpoint_attack,
    "handoff-replay": run_handoff_replay_attack,
}


def run_cross_migration_matrix(seed: int | str = 40) -> list[CrossMigrationOutcome]:
    """Run every cross-migration attack; the caller asserts all blocked."""
    return [
        fn(seed=f"{seed}/{name}") for name, fn in CROSS_MIGRATION_ATTACKS.items()
    ]
