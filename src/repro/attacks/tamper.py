"""On-the-wire tampering with the sealed checkpoint (P-2, integrity).

The adversary owns the network (and the disk the checkpoint crosses).
Every modification — a single flipped bit, truncation, wholesale
substitution — must be detected before any state is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CryptoError, IntegrityError, MigrationError, RestoreError
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.sdk.host import HostApplication, WorkerSpec
from repro.workloads.mailserver import build_mailserver_image


@dataclass
class TamperOutcome:
    """Whether the target detected the tampering, and with which error."""

    mode: str
    detected: bool
    error: str


def _flip_byte(payload: bytes, offset_from_end: int = 100) -> bytes:
    index = max(0, len(payload) - offset_from_end)
    mutated = bytearray(payload)
    mutated[index] ^= 0x40
    return bytes(mutated)


def run_tamper_scenario(mode: str = "flip", seed: int = 53) -> TamperOutcome:
    """Migrate with a tampering network tap; report what the target did.

    Modes: ``flip`` (one bit in the ciphertext), ``truncate`` (drop the
    tail), ``substitute`` (replace with an older capture of itself —
    degenerate here, same bytes, so it must *succeed*; used as the
    control case by the tests).
    """
    tb = build_testbed(seed=seed)
    built = build_mailserver_image(tb.builder, flavor=f"tamper-{mode}")
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source, tb.source_os, built.image,
        workers=[WorkerSpec("sent_log", repeat=0)], owner=tb.owner,
    ).launch()
    app.ecall_once(0, "create_mail", {"recipients": ["alice"], "content": "xxx"})

    def tamper_tap(label: str, payload: bytes) -> bytes | None:
        if label != "checkpoint":
            return None
        if mode == "flip":
            return _flip_byte(payload)
        if mode == "truncate":
            return payload[: len(payload) // 2]
        return None  # substitute/control: deliver unchanged

    tb.network.add_tap(tamper_tap)
    orch = MigrationOrchestrator(tb)
    try:
        orch.migrate_enclave(app)
    except (IntegrityError, RestoreError, CryptoError, MigrationError) as exc:
        return TamperOutcome(mode=mode, detected=True, error=type(exc).__name__)
    return TamperOutcome(mode=mode, detected=False, error="")
