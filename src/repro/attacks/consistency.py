"""The §IV-A data-consistency attack (Figure 3), executable.

Scenario: a bank enclave's worker thread is mid-transfer between two
accounts on different pages.  The checkpointer must not capture a state
where the debit is visible but the credit is not *and the continuation
is lost*.

Two checkpointers face the same malicious scheduler:

* the **naive** one calls ``stop_other_threads()`` and believes the OS's
  "OK" — Figure 3's victim;
* the paper's **two-phase** one trusts only the in-enclave flags.

``run_consistency_scenario`` returns the restored-state invariant sum
for the chosen checkpointer so tests can assert exactly who breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.crypto.keys import SymmetricKey
from repro.migration.checkpoint import EnclaveCheckpoint, TcsState, open_checkpoint, seal_checkpoint
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import Testbed, build_testbed
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sdk.image import FLAG_FREE
from repro.sgx import instructions as isa
from repro.sgx.structures import PAGE_SIZE, Permissions
from repro.workloads.bank import TOTAL, build_bank_image


@dataclass
class ConsistencyOutcome:
    """What the restored enclave looked like after the dust settled."""

    restored_sum: int
    expected_sum: int
    scheduler_honest: bool
    checkpointer: str

    @property
    def consistent(self) -> bool:
        return self.restored_sum == self.expected_sum


def _setup(tb: Testbed) -> HostApplication:
    built = build_bank_image(tb.builder)
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source,
        tb.source_os,
        built.image,
        workers=[WorkerSpec("transfer", args={"rounds": 600, "amount": 1}, repeat=1)],
        owner=tb.owner,
    ).launch()
    app.ecall_once(1, "init")
    # Let the transfer loop get going.
    for _ in range(40):
        tb.source_os.engine.step_round()
    return app


def _naive_checkpoint_body(app: HostApplication, out: dict) -> Iterator[int]:
    """Figure 3's victim: trust the OS, then dump page by page.

    Every page read is a separate scheduling step, so an unstopped worker
    interleaves real transfers *between* the reads — exactly the torn
    read of account A (old) and account B (new).
    """
    library = app.library
    thread = out["self"]
    library.guest_os.scheduler.stop_other_threads(app.process, thread)
    yield 2_000
    template = app.image.control_tcs
    session = isa.eenter(library.cpu, library.hw(), template.vaddr, aep=library)
    rt = library._runtime(session)
    rt.control_entry_stub(template.index)
    pages: dict[int, bytes] = {}
    for vaddr in app.image.readable_reg_vaddrs():
        pages[vaddr] = rt.read(vaddr, PAGE_SIZE)
        yield 3_000  # the interleaving window
    key = SymmetricKey(rt.random_bytes(32), "naive-ckpt")
    checkpoint = EnclaveCheckpoint(
        image_name=app.image.name,
        code_id=app.image.code_id,
        mrenclave=app.image.mrenclave,
        sequence=1,
        pages=pages,
        # The naive scheme believes every thread is stopped outside.
        tcs_states=[TcsState(t.index, 0, FLAG_FREE) for t in app.image.tcs_templates],
        skipped_pages=[],
    )
    out["envelope"] = seal_checkpoint(checkpoint, key, rt.random_bytes(16))
    out["key"] = key
    rt.exit_stub(template.index)
    isa.eexit(session)
    library.guest_os.scheduler.resume_threads(app.process)
    return None


def _restore_sum(tb: Testbed, app: HostApplication, envelope, key: SymmetricKey) -> int:
    """Restore the (naive) checkpoint into a virgin target and read A+B."""
    checkpoint = open_checkpoint(key, envelope)
    target = HostApplication(
        tb.target, tb.target_os, app.image, app.workers, name="bank-restored"
    )
    target.library.launch(owner=None)
    template = app.image.control_tcs
    session = isa.eenter(tb.target.cpu, target.library.hw(), template.vaddr)
    rt = target.library._runtime(session)
    rt.control_entry_stub(template.index)
    writable = {
        p.vaddr for p in app.image.pages if Permissions.W in p.sec_info.permissions
    }
    for vaddr, data in checkpoint.pages.items():
        if vaddr in writable:
            rt.write(vaddr, data)
    rt.set_global_flag(0)
    rt.exit_stub(template.index)
    isa.eexit(session)
    balances = target.ecall_once(1, "balances")
    return balances["a"] + balances["b"]


def run_consistency_scenario(
    checkpointer: str = "two-phase",
    malicious_scheduler: bool = True,
    seed: int = 11,
) -> ConsistencyOutcome:
    """Run the attack; returns the restored invariant sum.

    ``checkpointer`` is ``"naive"`` or ``"two-phase"``.
    """
    tb = build_testbed(seed=seed, malicious_scheduler=malicious_scheduler)
    app = _setup(tb)

    if checkpointer == "naive":
        out: dict = {}
        thread = tb.source_os.spawn_thread(
            app.process, "naive-ckpt", _naive_checkpoint_body(app, out)
        )
        out["self"] = thread
        tb.source_os.run_until(lambda: thread.finished)
        restored_sum = _restore_sum(tb, app, out["envelope"], out["key"])
    elif checkpointer == "two-phase":
        orch = MigrationOrchestrator(tb)
        result = orch.migrate_enclave(app)
        target = result.target_app
        # Let the resumed in-flight transfer entry run to completion so
        # the SSA continuation does its half of the consistency story.
        for _ in range(20_000):
            if not target.process.live_threads():
                break
            tb.target_os.engine.step_round()
        balances = target.ecall_once(1, "balances")
        restored_sum = balances["a"] + balances["b"]
    else:
        raise ValueError(f"unknown checkpointer {checkpointer!r}")

    return ConsistencyOutcome(
        restored_sum=restored_sum,
        expected_sum=TOTAL,
        scheduler_honest=not malicious_scheduler,
        checkpointer=checkpointer,
    )
