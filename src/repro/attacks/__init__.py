"""Adversary playbook.

Executable implementations of every attack the paper defends against,
used by the security test suite and the examples:

* :mod:`repro.attacks.consistency` — §IV-A data-consistency attack by a
  lying guest scheduler, against a naive checkpointer and the two-phase
  scheme.
* :mod:`repro.attacks.fork`        — §V-A fork attack on the mail server.
* :mod:`repro.attacks.rollback`    — §V-A rollback / brute-force attack
  on the password server.
* :mod:`repro.attacks.replay`      — network replay of stale protocol
  messages and checkpoints.
* :mod:`repro.attacks.tamper`      — checkpoint bit-flips and truncation
  on the wire.
* :mod:`repro.attacks.crossmig`    — cross-migration attacks on the
  sealed-storage handoff: rollback, counter fork via the retired
  source, stale-checkpoint restore, handoff replay.
"""

from repro.attacks.consistency import run_consistency_scenario
from repro.attacks.crossmig import (
    run_counter_fork_attack,
    run_cross_migration_matrix,
    run_handoff_replay_attack,
    run_stale_checkpoint_attack,
    run_storage_rollback_attack,
)
from repro.attacks.fork import run_fork_scenario
from repro.attacks.replay import run_replay_scenario
from repro.attacks.rollback import run_rollback_scenario
from repro.attacks.tamper import run_tamper_scenario

__all__ = [
    "run_consistency_scenario",
    "run_counter_fork_attack",
    "run_cross_migration_matrix",
    "run_fork_scenario",
    "run_handoff_replay_attack",
    "run_replay_scenario",
    "run_rollback_scenario",
    "run_stale_checkpoint_attack",
    "run_storage_rollback_attack",
    "run_tamper_scenario",
]
