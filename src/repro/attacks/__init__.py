"""Adversary playbook.

Executable implementations of every attack the paper defends against,
used by the security test suite and the examples:

* :mod:`repro.attacks.consistency` — §IV-A data-consistency attack by a
  lying guest scheduler, against a naive checkpointer and the two-phase
  scheme.
* :mod:`repro.attacks.fork`        — §V-A fork attack on the mail server.
* :mod:`repro.attacks.rollback`    — §V-A rollback / brute-force attack
  on the password server.
* :mod:`repro.attacks.replay`      — network replay of stale protocol
  messages and checkpoints.
* :mod:`repro.attacks.tamper`      — checkpoint bit-flips and truncation
  on the wire.
"""

from repro.attacks.consistency import run_consistency_scenario
from repro.attacks.fork import run_fork_scenario
from repro.attacks.replay import run_replay_scenario
from repro.attacks.rollback import run_rollback_scenario
from repro.attacks.tamper import run_tamper_scenario

__all__ = [
    "run_consistency_scenario",
    "run_fork_scenario",
    "run_replay_scenario",
    "run_rollback_scenario",
    "run_tamper_scenario",
]
