"""Cross-enclave consistency (§VII-A).

"There are cases that a VM may contain multiple interrelated enclaves ...
a malicious guest OS may try to violate the consistency of the VM's
checkpoint that contains all of the enclaves' checkpoints:
C_All-Enc = {C_Enc-1, ..., C_Enc-n}.  Our checkpoint generating mechanism
can inherently enforce the consistency of C_All-Enc."

The scenario: an application shards one logical ledger across two
enclaves; a transfer debits enclave A and credits enclave B through the
host (the only channel enclaves have to each other on one VM).  The
VM-wide invariant is sum(A) + sum(B) + in-flight = TOTAL.  Because each
enclave's checkpoint is individually consistent (P-3) and in-flight
transfers live in resumable host/worker state that migrates exactly once
(P-4, P-5), the composed checkpoint is consistent too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.migration.testbed import Testbed, build_testbed
from repro.migration.vm import VmMigrationManager
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sdk.program import AtomicEntry, EnclaveProgram

TOTAL = 9000


def build_shard_program(tag: str) -> EnclaveProgram:
    """One ledger shard: init/debit/credit/balance on a single global."""
    program = EnclaveProgram(f"repro/ledger-shard-{tag}-v1")

    def init(rt, args):
        rt.store_global("balance", int(args))
        return int(args)

    def debit(rt, args):
        balance = rt.load_global("balance")
        amount = min(int(args), balance)
        rt.store_global("balance", balance - amount)
        return amount

    def credit(rt, args):
        rt.store_global("balance", rt.load_global("balance") + int(args))
        return rt.load_global("balance")

    def balance(rt, args):
        return rt.load_global("balance")

    program.add_entry("init", AtomicEntry(init))
    program.add_entry("debit", AtomicEntry(debit))
    program.add_entry("credit", AtomicEntry(credit))
    program.add_entry("balance", AtomicEntry(balance, cost_ns=2_000))
    return program


@dataclass
class MultiEnclaveOutcome:
    """Ledger totals before and after migrating the whole VM."""

    total_before: int
    total_after: int
    n_transfers: int

    @property
    def consistent(self) -> bool:
        return self.total_before == self.total_after == TOTAL


def run_multi_enclave_scenario(seed: int = 61, n_transfers: int = 5) -> MultiEnclaveOutcome:
    """Shard a ledger across two enclaves, transfer, migrate the VM."""
    tb = build_testbed(seed=seed)
    shards = []
    for i, start in enumerate((TOTAL, 0)):
        built = tb.builder.build(
            f"shard-{i}", build_shard_program(f"s{i}"), n_workers=2,
            global_names=("balance",),
        )
        tb.owner.register_image(built)
        app = HostApplication(
            tb.source, tb.source_os, built.image, [], owner=tb.owner, name=f"shard-{i}"
        ).launch()
        app.ecall_once(0, "init", start)
        shards.append(app)

    # Host-mediated transfers between the shards (atomic per hop: the
    # host only credits what the debit returned).
    for _ in range(n_transfers):
        moved = shards[0].ecall_once(0, "debit", 250)
        shards[1].ecall_once(0, "credit", moved)

    total_before = sum(s.ecall_once(0, "balance") for s in shards)
    result = VmMigrationManager(tb, shards).migrate()
    total_after = sum(
        r.target_app.ecall_once(0, "balance") for r in result.enclave_results
    )
    return MultiEnclaveOutcome(total_before, total_after, n_transfers)
