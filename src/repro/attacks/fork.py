"""The §V-A fork attack (Figure 6), executable.

A mail client performs ① create (Eve among the recipients), ② delete
Eve, ③ send — each acknowledged before the next.  A forking operator
resumes instance one after state ① was migrated, serves ② there, then
routes ③ to instance two, which never saw the deletion: Eve gets the
mail.

``run_fork_scenario("secure")`` runs the paper's protocol and shows each
forking avenue fails (single channel, single K_migrate, self-destroy).
``run_fork_scenario("forked")`` shows the same operator winning against
an *owner-keyed snapshot* flow — semantically the fork of Figure 6 —
while the owner's audit log records the evidence (§V-C's mitigation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ChannelError, MigrationError, SelfDestroyed
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.snapshot import SnapshotManager
from repro.migration.testbed import Testbed, build_testbed
from repro.sdk import control
from repro.sdk.host import HostApplication, WorkerSpec
from repro.workloads.mailserver import build_mailserver_image

EVE = "eve"
RECIPIENTS = ["alice", "bob", EVE]


@dataclass
class ForkOutcome:
    """What the forking operator achieved (and what blocked them)."""

    eve_got_mail: bool
    blocked_steps: list[str] = field(default_factory=list)
    audit_entries: int = 0


def _launch_mailserver(tb: Testbed, flavor: str) -> HostApplication:
    built = build_mailserver_image(tb.builder, flavor=flavor)
    tb.owner.register_image(built)
    return HostApplication(
        tb.source,
        tb.source_os,
        built.image,
        workers=[WorkerSpec("sent_log", repeat=0), WorkerSpec("sent_log", repeat=0)],
        owner=tb.owner,
    ).launch()


def run_fork_scenario(mode: str = "secure", seed: int = 23) -> ForkOutcome:
    """Run the Figure 6 workflow in the chosen world (see module doc)."""
    tb = build_testbed(seed=seed)
    if mode == "secure":
        return _secure_scenario(tb)
    if mode == "forked":
        return _forked_snapshot_scenario(tb)
    raise ValueError(f"unknown mode {mode!r}")


def _secure_scenario(tb: Testbed) -> ForkOutcome:
    """The paper's protocol: every fork avenue is a dead end."""
    app = _launch_mailserver(tb, "secure")
    outcome = ForkOutcome(eve_got_mail=False)

    # Op ①: create the draft (Eve included) on the source.
    created = app.ecall_once(0, "create_mail", {"recipients": RECIPIENTS, "content": "xxx"})
    mail_id = created["mail_id"]

    orch = MigrationOrchestrator(tb)
    result = orch.migrate_enclave(app)
    target = result.target_app

    # Avenue 1: resume the source instance to serve op ② there.
    # Self-destroy keeps the global flag set: the ecall never completes.
    thread = tb.source_os.spawn_thread(
        app.process,
        "post-destroy-op",
        app.library.ecall_body(0, "delete_recipient", {"mail_id": mail_id, "recipient": EVE}),
    )
    for _ in range(300):
        tb.source_os.engine.step_round()
    if not thread.finished:
        outcome.blocked_steps.append("source-resume-spins-forever")

    # Avenue 2: migrate the (destroyed) source to a second target.
    try:
        orch.checkpoint_enclave(app)
    except SelfDestroyed:
        outcome.blocked_steps.append("second-checkpoint-refused")

    # Avenue 3: open a second channel for another K_migrate handoff.
    second = orch.build_virgin_target(app)
    try:
        orch.establish_channel(app, second)
    except (ChannelError, SelfDestroyed):
        outcome.blocked_steps.append("second-channel-refused")

    # The legitimate instance serves ② and ③ normally: no mail to Eve.
    target.ecall_once(0, "delete_recipient", {"mail_id": mail_id, "recipient": EVE})
    sent = target.ecall_once(0, "send_mail", {"mail_id": mail_id})
    outcome.eve_got_mail = EVE in sent["delivered_to"]
    return outcome


def _forked_snapshot_scenario(tb: Testbed) -> ForkOutcome:
    """Figure 6 verbatim, against owner-keyed snapshots.

    The operator *can* replay state ① into a second instance here — but
    only by asking the owner for the resume key, which lands in the
    audit log.  This is exactly the paper's point: migration must be
    fork-proof without the owner; checkpoint/resume is allowed but
    owner-audited.
    """
    app = _launch_mailserver(tb, "snapshot")
    manager = SnapshotManager(tb, tb.owner)

    created = app.ecall_once(0, "create_mail", {"recipients": RECIPIENTS, "content": "xxx"})
    mail_id = created["mail_id"]

    # Operator snapshots state ① ...
    snapshot = manager.snapshot(app, reason="routine backup (so the operator claims)")
    # ... serves op ② on the live instance (client gets its ack) ...
    app.ecall_once(0, "delete_recipient", {"mail_id": mail_id, "recipient": EVE})
    # ... then resurrects state ① elsewhere and routes op ③ to it.
    forked = manager.resume(snapshot, app, reason="load balancing (so the operator claims)")
    sent = forked.ecall_once(0, "send_mail", {"mail_id": mail_id})

    return ForkOutcome(
        eve_got_mail=EVE in sent["delivered_to"],
        audit_entries=len(tb.owner.audit_log),
    )
