"""The §V-A rollback / brute-force attack, executable.

The password server locks after three failed attempts.  A rolling-back
operator wants to reset the counter and keep guessing.

* Against the *migration* path: impossible.  A migration moves the
  locked state forward (state continuity, P-4); there is no key with
  which to restore any older checkpoint, and the source self-destroys.
* Against *owner-keyed snapshots*: each resume needs a fresh owner
  grant, so the brute force shows up in the audit log and repeated
  resumes of one sequence are flagged (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IntegrityError, MigrationError, RestoreError
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.snapshot import SnapshotManager
from repro.migration.testbed import Testbed, build_testbed
from repro.sdk.host import HostApplication, WorkerSpec
from repro.workloads.authserver import MAX_ATTEMPTS, build_authserver_image

PASSWORD = "correct horse battery staple"


@dataclass
class RollbackOutcome:
    """How far the brute-forcing operator got, and what got logged."""

    attempts_made: int
    locked_after: bool
    rollback_blocked: bool = False
    extra_attempts_via_snapshots: int = 0
    resumes_logged: int = 0
    flagged_rollbacks: int = 0
    blocked_reason: str = ""


def _launch_authserver(tb: Testbed) -> HostApplication:
    built = build_authserver_image(tb.builder)
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source,
        tb.source_os,
        built.image,
        workers=[WorkerSpec("status", repeat=0), WorkerSpec("status", repeat=0)],
        owner=tb.owner,
    ).launch()
    app.ecall_once(0, "setup", {"password": PASSWORD})
    return app


#: Public alias: the examples reuse this launcher.
launch_authserver = _launch_authserver


def _burn_attempts(app: HostApplication, guesses: list[str]) -> int:
    made = 0
    for guess in guesses:
        reply = app.ecall_once(0, "try_password", {"password": guess})
        made += 1
        if reply.get("locked"):
            break
    return made


def run_rollback_scenario(mode: str = "migration", seed: int = 31) -> RollbackOutcome:
    """Attack the lockout counter via ``migration`` or ``snapshot``."""
    tb = build_testbed(seed=seed)
    app = _launch_authserver(tb)
    guesses = [f"guess-{i}" for i in range(10)]

    made = _burn_attempts(app, guesses[:MAX_ATTEMPTS])
    locked = app.ecall_once(0, "status")["locked"]

    if mode == "migration":
        # The operator migrates hoping for a fresh counter.  State
        # continuity means the lock travels with the enclave.
        orch = MigrationOrchestrator(tb)
        result = orch.migrate_enclave(app)
        target = result.target_app
        still_locked = target.ecall_once(0, "status")["locked"]
        # And there is no older state to restore: the only checkpoint
        # ever sealed is the current one, under a key that was consumed.
        return RollbackOutcome(
            attempts_made=made,
            locked_after=still_locked,
            rollback_blocked=still_locked,
            blocked_reason="migration preserves state continuity; no old checkpoint exists",
        )

    if mode == "snapshot":
        # The §V-C path: the operator CAN roll back, but every resume is
        # an owner-audited event and repeats are flagged.
        tb2 = build_testbed(seed=seed + 1)
        app2 = _launch_authserver(tb2)
        manager = SnapshotManager(tb2, tb2.owner)
        snapshot = manager.snapshot(app2, reason="before maintenance (so the operator claims)")
        extra = 0
        current = app2
        for _round in range(2):
            _burn_attempts(current, guesses[:MAX_ATTEMPTS])
            extra += MAX_ATTEMPTS
            current = manager.resume(
                snapshot, app2, reason="crash recovery (so the operator claims)"
            )
        resumes = sum(1 for e in tb2.owner.audit_log if e.operation == "resume")
        return RollbackOutcome(
            attempts_made=made,
            locked_after=locked,
            extra_attempts_via_snapshots=extra,
            resumes_logged=resumes,
            flagged_rollbacks=len(tb2.owner.suspicious_rollbacks()),
        )

    raise ValueError(f"unknown mode {mode!r}")
