"""Network replay attacks against the migration protocol.

"Resending all the network packets to a target enclave cannot launch a
replay attack successfully, because the control threads will establish a
new secure channel (with random session key) for each migration so that
the stale checkpoint will be considered invalid" (§VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    ChannelError,
    IntegrityError,
    MigrationError,
    RestoreError,
    SignatureError,
)
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import Testbed, build_testbed
from repro.sdk import control
from repro.sdk.host import HostApplication, WorkerSpec
from repro.serde import unpack
from repro.workloads.mailserver import build_mailserver_image


@dataclass
class ReplayOutcome:
    """Which error stopped each replayed message (empty = not blocked)."""

    key_replay_error: str = ""
    answer_replay_error: str = ""
    checkpoint_replay_error: str = ""

    @property
    def all_blocked(self) -> bool:
        return all(
            (self.key_replay_error, self.answer_replay_error, self.checkpoint_replay_error)
        )


def run_replay_scenario(seed: int = 41) -> ReplayOutcome:
    """Run one legitimate migration, then replay everything captured."""
    tb = build_testbed(seed=seed)
    built = build_mailserver_image(tb.builder, flavor="replay")
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source, tb.source_os, built.image,
        workers=[WorkerSpec("sent_log", repeat=0)], owner=tb.owner,
    ).launch()
    app.ecall_once(0, "create_mail", {"recipients": ["alice"], "content": "secret"})

    orch = MigrationOrchestrator(tb)
    orch.migrate_enclave(app)

    captured_key = tb.network.captured("kmigrate")[0]
    captured_answer = tb.network.captured("channel-answer")[0]
    captured_checkpoint = tb.network.captured("checkpoint")[0]
    outcome = ReplayOutcome()

    # A second virgin target, as the replaying operator would build it.
    replay_target = orch.build_virgin_target(app)

    # Replay the captured K_migrate envelope: the new instance has no
    # session key (the channel was between two other enclaves).
    try:
        replay_target.library.control_call(control.target_receive_key, captured_key)
    except (ChannelError, IntegrityError) as exc:
        outcome.key_replay_error = type(exc).__name__

    # Replay the captured channel answer against a fresh channel request:
    # the source's signature binds the *old* target's DH half.
    replay_target.library.control_call(
        control.target_channel_request, tb.target.quoting_enclave
    )
    answer = unpack(captured_answer)
    try:
        replay_target.library.control_call(
            control.target_complete_channel, answer["dh"], answer["sig"]
        )
    except SignatureError as exc:
        outcome.answer_replay_error = type(exc).__name__

    # Replay the stale checkpoint without any key at all.
    try:
        replay_target.library.control_call(
            control.target_restore_memory, captured_checkpoint
        )
    except (RestoreError, IntegrityError, MigrationError) as exc:
        outcome.checkpoint_replay_error = type(exc).__name__

    return outcome
