"""Two-machine testbed: the paper's experimental setup in one object.

Builds the source and target machines (each: SGX CPU + hypervisor + QEMU
+ one guest VM with a guest OS), the shared attestation service, the
network, the SDK builder and an enclave owner — wired to one virtual
clock so every experiment is deterministic and timing-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import KeyPair
from repro.crypto.rsa import generate_rsa_keypair
from repro.durability.store import DurableStore
from repro.guestos.kernel import GuestOs
from repro.invariants.monitor import InvariantMonitor
from repro.hypervisor.vm import Vm
from repro.machine import Machine
from repro.net.network import Network
from repro.sdk.builder import SdkBuilder
from repro.sdk.owner import EnclaveOwner
from repro.sgx.attestation import AttestationService
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace
from repro.telemetry import Telemetry


@dataclass
class Testbed:
    """Everything a migration scenario needs."""

    clock: VirtualClock
    trace: EventTrace
    rng: DeterministicRng
    costs: CostModel
    network: Network
    ias: AttestationService
    source: Machine
    target: Machine
    source_vm: Vm
    target_vm: Vm
    source_os: GuestOs
    target_os: GuestOs
    builder: SdkBuilder
    owner: EnclaveOwner
    #: Stable storage for write-ahead journals; survives party crashes.
    durable: DurableStore = field(default_factory=DurableStore)
    #: Live safety-invariant monitor; attached by :func:`build_testbed`.
    monitor: InvariantMonitor | None = None
    #: Span tracer + metrics registry; attached by :func:`build_testbed`
    #: (or lazily by :func:`repro.telemetry.ensure_telemetry`).
    telemetry: Telemetry | None = None


def build_testbed(
    seed: int | str = 0,
    costs: CostModel = DEFAULT_COSTS,
    n_vcpus: int = 4,
    memory_mb: int = 2048,
    vepc_pages: int = 4096,
    epc_pages: int = 16384,
    working_set_pages: int | None = None,
    dirty_rate_pps: int = 2_000,
    malicious_scheduler: bool = False,
) -> Testbed:
    """Build the two-laptop setup of §VIII.

    ``malicious_scheduler`` makes the *source* guest OS lie about
    stopping threads (the §IV-A adversary); everything else stays honest
    so tests can show the attack is real and the defense works.
    """
    clock = VirtualClock()
    trace = EventTrace(clock)
    telemetry = Telemetry(clock, trace)
    rng = DeterministicRng(seed)
    network = Network(clock, costs, trace)

    ias_key = KeyPair(generate_rsa_keypair(rng.fork("ias-key")), "ias")
    ias = AttestationService(clock, costs, ias_key)

    source = Machine("source", clock, trace, rng, costs, epc_pages=epc_pages)
    target = Machine("target", clock, trace, rng, costs, epc_pages=epc_pages)
    source.provision(ias)
    target.provision(ias)

    source_vm = source.hypervisor.create_vm(
        "vm-src",
        n_vcpus=n_vcpus,
        memory_mb=memory_mb,
        vepc_pages=vepc_pages,
        working_set_pages=working_set_pages,
        dirty_rate_pps=dirty_rate_pps,
    )
    target_vm = target.hypervisor.create_vm(
        "vm-tgt",
        n_vcpus=n_vcpus,
        memory_mb=memory_mb,
        vepc_pages=vepc_pages,
        working_set_pages=working_set_pages,
        dirty_rate_pps=dirty_rate_pps,
    )
    source_os = GuestOs(source, source_vm, malicious_scheduler=malicious_scheduler)
    target_os = GuestOs(target, target_vm)

    vendor_key = KeyPair(generate_rsa_keypair(rng.fork("vendor-key")), "vendor")
    builder = SdkBuilder(vendor_key, rng.fork("builder"))
    owner = EnclaveOwner("owner", ias, clock, costs, rng.fork("owner"))

    testbed = Testbed(
        clock=clock,
        trace=trace,
        rng=rng,
        costs=costs,
        network=network,
        ias=ias,
        source=source,
        target=target,
        source_vm=source_vm,
        target_vm=target_vm,
        source_os=source_os,
        target_os=target_os,
        builder=builder,
        owner=owner,
        telemetry=telemetry,
    )
    # Durable journals + the live invariant monitor are part of the
    # standard setup: every enclave library built on these machines
    # journals its state transitions, and the monitor watches every run.
    source.durable = target.durable = testbed.durable
    # Journal commits charge their modelled fsync latency to the shared
    # clock and report it to the shared registry.
    testbed.durable.clock = clock
    testbed.durable.metrics = trace.metrics
    testbed.durable.commit_cost_ns = costs.journal_commit_ns
    # Journal commits also surface as payload-free trace events, so the
    # flight recorder's per-party rings include durable transitions.
    testbed.durable.trace = trace
    testbed.monitor = InvariantMonitor(testbed)
    testbed.monitor.attach()
    return testbed
