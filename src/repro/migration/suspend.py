"""Whole-VM suspend / resume with enclaves (§V-C at VM scale).

Footnote 1 of the paper: "We uniformly term VM suspension, resuming and
live migration as live migration since the key steps of live migration
involve suspending and resuming a VM."  A suspension writes the VM image
to (shared) storage instead of a peer machine; because no target enclave
exists to attest, the enclaves' checkpoints must use owner-granted
K_encrypt — making every later resume an owner-audited operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MigrationError
from repro.migration.snapshot import Snapshot, SnapshotManager
from repro.migration.testbed import Testbed
from repro.sdk.host import HostApplication
from repro.sgx.structures import PAGE_SIZE
from repro.telemetry.spans import maybe_span


@dataclass
class VmImage:
    """A suspended VM on disk: RAM size + per-enclave sealed snapshots."""

    vm_name: str
    ram_bytes: int
    snapshots: list[Snapshot] = field(default_factory=list)
    #: The host applications' specs, needed to rebuild processes (this is
    #: ordinary data inside the image; nothing secret).
    app_templates: list[HostApplication] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return self.ram_bytes + sum(s.size for s in self.snapshots)


class VmSuspendManager:
    """Suspend a VM (with enclaves) to an image; resume it elsewhere."""

    def __init__(self, testbed: Testbed, apps: list[HostApplication]) -> None:
        self.tb = testbed
        self.apps = apps
        self.snapshots = SnapshotManager(testbed, testbed.owner)

    def suspend(self, reason: str) -> VmImage:
        """Write the source VM to an image and pause it.

        Each enclave takes an owner-keyed snapshot (so the image can be
        resumed later, under audit), then the VM stops: its RAM is
        written to storage at disk bandwidth.
        """
        vm = self.tb.source_vm
        if vm.paused:
            raise MigrationError("VM is already suspended")
        with maybe_span(self.tb.trace, "vm.suspend", party="source", vm=vm.name):
            image = VmImage(vm_name=vm.name, ram_bytes=vm.memory.used_pages * PAGE_SIZE)
            for app in self.apps:
                image.snapshots.append(self.snapshots.snapshot(app, reason=reason))
                image.app_templates.append(app)
            # Write RAM to storage (modelled at the migration link's rate).
            self.tb.clock.advance(self.tb.costs.net_transfer_ns(image.ram_bytes))
            vm.pause()
        self.tb.trace.metrics.counter("vm.suspends_total").inc()
        self.tb.trace.emit(
            "qemu", "suspended", vm=vm.name, image_mb=image.size_bytes // (1024 * 1024)
        )
        return image

    def resume(self, image: VmImage, reason: str, on_target: bool = True) -> list[HostApplication]:
        """Bring a suspended image back up; every enclave re-attests.

        "When resuming, the control thread must use remote attestation to
        retrieve the corresponding K_encrypt from the enclave owner.
        Thus, all the checkpoint/resume operations are logged" (§V-C).
        """
        machine = self.tb.target if on_target else self.tb.source
        with maybe_span(
            self.tb.trace, "vm.resume", party=machine.name, vm=image.vm_name
        ):
            # Read RAM back from storage.
            self.tb.clock.advance(self.tb.costs.net_transfer_ns(image.ram_bytes))
            resumed = []
            for snapshot, template in zip(image.snapshots, image.app_templates):
                resumed.append(
                    self.snapshots.resume(
                        snapshot, template, reason=reason, on_target=on_target
                    )
                )
        self.tb.trace.metrics.counter("vm.resumes_total").inc()
        self.tb.trace.emit("qemu", "resumed", vm=image.vm_name, machine=machine.name)
        return resumed
