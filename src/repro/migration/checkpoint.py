"""The enclave checkpoint: format and sealing.

§IV: "At the beginning of a migration, the control thread will traverse
the entire used memory within the boundary of the enclave and dump the
data ... the source control thread first calculates a hash value of the
checkpoint and then uses a randomly generated migration key (K_migrate)
to encrypt the data together with the hash value."

A checkpoint carries:

* every *readable* REG page (the W+X non-readable pages of SGX v1 cannot
  be dumped — the limitation §IV-B documents — and are listed so the
  target knows they were skipped);
* per-TCS thread state: the tracked CSSA (§IV-C) and the local flag;
* identity metadata binding it to one image (code id + MRENCLAVE).

Sealing is hash-then-encrypt-then-MAC via :mod:`repro.crypto.authenc`,
under K_migrate (random, §IV) or the owner's K_encrypt (§V-C snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.authenc import Envelope, open_envelope, seal_envelope
from repro.crypto.hashes import sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import ChunkError, RestoreError
from repro.serde import SerdeError, pack, unpack


@dataclass(frozen=True)
class TcsState:
    """Per-thread migration state."""

    index: int
    cssa: int        # the in-enclave tracked CSSA (§IV-C)
    local_flag: int  # FLAG_FREE or FLAG_SPIN at the quiescent point


@dataclass
class EnclaveCheckpoint:
    """A consistent snapshot of one enclave, ready for sealing."""

    image_name: str
    code_id: str
    mrenclave: bytes
    sequence: int
    pages: dict[int, bytes] = field(default_factory=dict)
    tcs_states: list[TcsState] = field(default_factory=list)
    skipped_pages: list[int] = field(default_factory=list)

    @property
    def memory_bytes(self) -> int:
        return sum(len(data) for data in self.pages.values())

    def tcs_state(self, index: int) -> TcsState:
        for state in self.tcs_states:
            if state.index == index:
                return state
        raise RestoreError(f"checkpoint has no TCS state for index {index}")

    def to_bytes(self) -> bytes:
        return pack(
            {
                "image_name": self.image_name,
                "code_id": self.code_id,
                "mrenclave": self.mrenclave,
                "sequence": self.sequence,
                "pages": {f"{vaddr:#x}": data for vaddr, data in self.pages.items()},
                "tcs": [
                    {"index": s.index, "cssa": s.cssa, "flag": s.local_flag}
                    for s in self.tcs_states
                ],
                "skipped": self.skipped_pages,
            }
        )

    @staticmethod
    def from_bytes(blob: bytes) -> "EnclaveCheckpoint":
        fields = unpack(blob)
        return EnclaveCheckpoint(
            image_name=fields["image_name"],
            code_id=fields["code_id"],
            mrenclave=fields["mrenclave"],
            sequence=fields["sequence"],
            pages={int(vaddr, 16): data for vaddr, data in fields["pages"].items()},
            tcs_states=[
                TcsState(t["index"], t["cssa"], t["flag"]) for t in fields["tcs"]
            ],
            skipped_pages=list(fields["skipped"]),
        )


def seal_checkpoint(
    checkpoint: EnclaveCheckpoint,
    key: SymmetricKey,
    nonce: bytes,
    algorithm: str = "rc4",
) -> Envelope:
    """Seal a checkpoint for transfer over untrusted channels."""
    return seal_envelope(key, checkpoint.to_bytes(), nonce, algorithm, aad=b"enclave-ckpt")


def open_checkpoint(key: SymmetricKey, envelope: Envelope) -> EnclaveCheckpoint:
    """Open and validate a sealed checkpoint (raises on any tampering)."""
    return EnclaveCheckpoint.from_bytes(open_envelope(key, envelope, aad=b"enclave-ckpt"))


# ---------------------------------------------------------------------------
# Chunked, resumable transfer framing
# ---------------------------------------------------------------------------
#
# The sealed envelope is opaque ciphertext; how it crosses the wire is an
# *untrusted transport* concern.  Chunking it lets an interrupted transfer
# resume from the missing chunks instead of restarting from byte zero, and
# the per-chunk frame digest lets the receiver detect line corruption and
# request a retransmit long before the (enclave-internal, authoritative)
# envelope MAC check would fail the whole migration.  None of this is in
# the TCB: a lying reassembler merely produces a blob the enclave rejects.

DEFAULT_CHUNK_BYTES = 16 * 1024


def chunk_blob(blob: bytes, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> list[bytes]:
    """Split an opaque blob into self-describing, re-orderable frames."""
    if chunk_bytes <= 0:
        raise ChunkError(f"chunk size must be positive, got {chunk_bytes}")
    total = len(blob)
    offsets = list(range(0, total, chunk_bytes)) or [0]
    n_chunks = len(offsets)
    frames = []
    for seq, offset in enumerate(offsets):
        data = blob[offset : offset + chunk_bytes]
        frames.append(
            pack(
                {
                    "seq": seq,
                    "n_chunks": n_chunks,
                    "offset": offset,
                    "total": total,
                    "digest": sha256(data),
                    "data": data,
                }
            )
        )
    return frames


class ChunkReassembler:
    """Receiver side of the chunked transfer: order- and loss-tolerant.

    Chunks may arrive in any order; duplicates are ignored; a frame whose
    digest does not match (line corruption) raises :class:`ChunkError` so
    the sender retransmits exactly that chunk.  ``missing()`` names what
    a resumed transfer still owes.
    """

    def __init__(self) -> None:
        self.total: int | None = None
        self.n_chunks: int | None = None
        self._parts: dict[int, bytes] = {}
        self._offsets: dict[int, int] = {}
        self.duplicates_seen = 0

    def accept(self, frame: bytes) -> bool:
        """Ingest one frame; returns True when it carried new data."""
        try:
            fields = unpack(frame)
            seq = int(fields["seq"])
            n_chunks = int(fields["n_chunks"])
            offset = int(fields["offset"])
            total = int(fields["total"])
            digest = fields["digest"]
            data = fields["data"]
        except (SerdeError, KeyError, TypeError, ValueError) as exc:
            raise ChunkError(f"malformed chunk frame: {exc}") from exc
        if sha256(data) != digest:
            raise ChunkError(f"chunk {seq} failed its frame digest (line corruption)")
        if self.total is None:
            self.total, self.n_chunks = total, n_chunks
        elif (total, n_chunks) != (self.total, self.n_chunks):
            raise ChunkError("chunk frame disagrees with the stream geometry")
        if not 0 <= seq < n_chunks:
            raise ChunkError(f"chunk sequence {seq} out of range [0, {n_chunks})")
        if seq in self._parts:
            self.duplicates_seen += 1
            return False
        self._parts[seq] = data
        self._offsets[seq] = offset
        return True

    @property
    def complete(self) -> bool:
        return self.n_chunks is not None and len(self._parts) == self.n_chunks

    def missing(self) -> list[int]:
        """Chunk sequence numbers a resumed transfer still has to send."""
        if self.n_chunks is None:
            return []
        return [seq for seq in range(self.n_chunks) if seq not in self._parts]

    def assemble(self) -> bytes:
        if not self.complete:
            raise ChunkError(f"stream incomplete: missing chunks {self.missing()}")
        cursor = 0
        pieces = []
        for seq in range(self.n_chunks or 0):
            if self._offsets[seq] != cursor:
                raise ChunkError(
                    f"chunk {seq} claims offset {self._offsets[seq]}, expected {cursor}"
                )
            pieces.append(self._parts[seq])
            cursor += len(self._parts[seq])
        blob = b"".join(pieces)
        if self.total is not None and len(blob) != self.total:
            raise ChunkError(
                f"assembled {len(blob)} bytes but the stream declared {self.total}"
            )
        return blob
