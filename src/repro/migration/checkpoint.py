"""The enclave checkpoint: format and sealing.

§IV: "At the beginning of a migration, the control thread will traverse
the entire used memory within the boundary of the enclave and dump the
data ... the source control thread first calculates a hash value of the
checkpoint and then uses a randomly generated migration key (K_migrate)
to encrypt the data together with the hash value."

A checkpoint carries:

* every *readable* REG page (the W+X non-readable pages of SGX v1 cannot
  be dumped — the limitation §IV-B documents — and are listed so the
  target knows they were skipped);
* per-TCS thread state: the tracked CSSA (§IV-C) and the local flag;
* identity metadata binding it to one image (code id + MRENCLAVE).

Sealing is hash-then-encrypt-then-MAC via :mod:`repro.crypto.authenc`,
under K_migrate (random, §IV) or the owner's K_encrypt (§V-C snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.authenc import Envelope, open_envelope, seal_envelope
from repro.crypto.keys import SymmetricKey
from repro.errors import RestoreError
from repro.serde import pack, unpack


@dataclass(frozen=True)
class TcsState:
    """Per-thread migration state."""

    index: int
    cssa: int        # the in-enclave tracked CSSA (§IV-C)
    local_flag: int  # FLAG_FREE or FLAG_SPIN at the quiescent point


@dataclass
class EnclaveCheckpoint:
    """A consistent snapshot of one enclave, ready for sealing."""

    image_name: str
    code_id: str
    mrenclave: bytes
    sequence: int
    pages: dict[int, bytes] = field(default_factory=dict)
    tcs_states: list[TcsState] = field(default_factory=list)
    skipped_pages: list[int] = field(default_factory=list)

    @property
    def memory_bytes(self) -> int:
        return sum(len(data) for data in self.pages.values())

    def tcs_state(self, index: int) -> TcsState:
        for state in self.tcs_states:
            if state.index == index:
                return state
        raise RestoreError(f"checkpoint has no TCS state for index {index}")

    def to_bytes(self) -> bytes:
        return pack(
            {
                "image_name": self.image_name,
                "code_id": self.code_id,
                "mrenclave": self.mrenclave,
                "sequence": self.sequence,
                "pages": {f"{vaddr:#x}": data for vaddr, data in self.pages.items()},
                "tcs": [
                    {"index": s.index, "cssa": s.cssa, "flag": s.local_flag}
                    for s in self.tcs_states
                ],
                "skipped": self.skipped_pages,
            }
        )

    @staticmethod
    def from_bytes(blob: bytes) -> "EnclaveCheckpoint":
        fields = unpack(blob)
        return EnclaveCheckpoint(
            image_name=fields["image_name"],
            code_id=fields["code_id"],
            mrenclave=fields["mrenclave"],
            sequence=fields["sequence"],
            pages={int(vaddr, 16): data for vaddr, data in fields["pages"].items()},
            tcs_states=[
                TcsState(t["index"], t["cssa"], t["flag"]) for t in fields["tcs"]
            ],
            skipped_pages=list(fields["skipped"]),
        )


def seal_checkpoint(
    checkpoint: EnclaveCheckpoint,
    key: SymmetricKey,
    nonce: bytes,
    algorithm: str = "rc4",
) -> Envelope:
    """Seal a checkpoint for transfer over untrusted channels."""
    return seal_envelope(key, checkpoint.to_bytes(), nonce, algorithm, aad=b"enclave-ckpt")


def open_checkpoint(key: SymmetricKey, envelope: Envelope) -> EnclaveCheckpoint:
    """Open and validate a sealed checkpoint (raises on any tampering)."""
    return EnclaveCheckpoint.from_bytes(open_envelope(key, envelope, aad=b"enclave-ckpt"))
