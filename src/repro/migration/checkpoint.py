"""The enclave checkpoint: format and sealing.

§IV: "At the beginning of a migration, the control thread will traverse
the entire used memory within the boundary of the enclave and dump the
data ... the source control thread first calculates a hash value of the
checkpoint and then uses a randomly generated migration key (K_migrate)
to encrypt the data together with the hash value."

A checkpoint carries:

* every *readable* REG page (the W+X non-readable pages of SGX v1 cannot
  be dumped — the limitation §IV-B documents — and are listed so the
  target knows they were skipped);
* per-TCS thread state: the tracked CSSA (§IV-C) and the local flag;
* identity metadata binding it to one image (code id + MRENCLAVE).

Sealing is hash-then-encrypt-then-MAC via :mod:`repro.crypto.authenc`,
under K_migrate (random, §IV) or the owner's K_encrypt (§V-C snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.authenc import Envelope, open_envelope, seal_envelope
from repro.crypto.hashes import sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import ChunkError, RestoreError
from repro.serde import SerdeError, pack, unpack

_CKPT_MAGIC = b"ECKPT2\x00"


@dataclass(frozen=True)
class TcsState:
    """Per-thread migration state."""

    index: int
    cssa: int        # the in-enclave tracked CSSA (§IV-C)
    local_flag: int  # FLAG_FREE or FLAG_SPIN at the quiescent point


@dataclass
class EnclaveCheckpoint:
    """A consistent snapshot of one enclave, ready for sealing."""

    image_name: str
    code_id: str
    mrenclave: bytes
    sequence: int
    pages: dict[int, bytes] = field(default_factory=dict)
    tcs_states: list[TcsState] = field(default_factory=list)
    skipped_pages: list[int] = field(default_factory=list)
    #: Committed sealed-storage version at checkpoint time (0 when the
    #: enclave has no storage namespace).  Binds the checkpoint to the
    #: storage snapshot migrating alongside it: a target whose imported
    #: namespace is older than this refuses to go live.
    storage_version: int = 0

    @property
    def memory_bytes(self) -> int:
        return sum(len(data) for data in self.pages.values())

    def tcs_state(self, index: int) -> TcsState:
        for state in self.tcs_states:
            if state.index == index:
                return state
        raise RestoreError(f"checkpoint has no TCS state for index {index}")

    def to_bytes(self) -> bytes:
        """Serialize as the compact v2 format: packed header + raw pages.

        Page *content* travels as raw bytes after the header instead of
        hex inside JSON — half the sealed size and none of the encode
        cost.  The header carries everything else plus a (vaddr, length)
        index locating each page in the tail.
        """
        vaddrs = sorted(self.pages)
        header = pack(
            {
                "image_name": self.image_name,
                "code_id": self.code_id,
                "mrenclave": self.mrenclave,
                "sequence": self.sequence,
                "page_index": [[vaddr, len(self.pages[vaddr])] for vaddr in vaddrs],
                "tcs": [
                    {"index": s.index, "cssa": s.cssa, "flag": s.local_flag}
                    for s in self.tcs_states
                ],
                "skipped": self.skipped_pages,
                "storage_version": self.storage_version,
            }
        )
        parts = [_CKPT_MAGIC, len(header).to_bytes(4, "big"), header]
        parts.extend(self.pages[vaddr] for vaddr in vaddrs)
        return b"".join(parts)

    @staticmethod
    def from_bytes(blob: bytes) -> "EnclaveCheckpoint":
        if blob[: len(_CKPT_MAGIC)] != _CKPT_MAGIC:
            return EnclaveCheckpoint._from_legacy_bytes(blob)
        view = memoryview(blob)
        cursor = len(_CKPT_MAGIC)
        header_len = int.from_bytes(view[cursor : cursor + 4], "big")
        cursor += 4
        try:
            fields = unpack(bytes(view[cursor : cursor + header_len]))
        except SerdeError as exc:
            raise SerdeError(f"malformed checkpoint header: {exc}") from exc
        cursor += header_len
        pages: dict[int, bytes] = {}
        for vaddr, n_bytes in fields["page_index"]:
            page = bytes(view[cursor : cursor + n_bytes])
            if len(page) != n_bytes:
                raise SerdeError("checkpoint page data truncated")
            pages[int(vaddr)] = page
            cursor += n_bytes
        if cursor != len(blob):
            raise SerdeError("checkpoint carries trailing bytes past the page index")
        return EnclaveCheckpoint(
            image_name=fields["image_name"],
            code_id=fields["code_id"],
            mrenclave=fields["mrenclave"],
            sequence=fields["sequence"],
            pages=pages,
            tcs_states=[
                TcsState(t["index"], t["cssa"], t["flag"]) for t in fields["tcs"]
            ],
            skipped_pages=list(fields["skipped"]),
            # Absent in blobs sealed before the storage-handoff step
            # existed; 0 means "no storage constraint", so old captures
            # keep restoring.
            storage_version=int(fields.get("storage_version", 0)),
        )

    @staticmethod
    def _from_legacy_bytes(blob: bytes) -> "EnclaveCheckpoint":
        """Parse the original all-JSON checkpoint (pre-v2 journals)."""
        fields = unpack(blob)
        return EnclaveCheckpoint(
            image_name=fields["image_name"],
            code_id=fields["code_id"],
            mrenclave=fields["mrenclave"],
            sequence=fields["sequence"],
            pages={int(vaddr, 16): data for vaddr, data in fields["pages"].items()},
            tcs_states=[
                TcsState(t["index"], t["cssa"], t["flag"]) for t in fields["tcs"]
            ],
            skipped_pages=list(fields["skipped"]),
            storage_version=int(fields.get("storage_version", 0)),
        )


def seal_checkpoint(
    checkpoint: EnclaveCheckpoint,
    key: SymmetricKey,
    nonce: bytes,
    algorithm: str = "rc4",
) -> Envelope:
    """Seal a checkpoint for transfer over untrusted channels."""
    return seal_envelope(key, checkpoint.to_bytes(), nonce, algorithm, aad=b"enclave-ckpt")


def open_checkpoint(key: SymmetricKey, envelope: Envelope) -> EnclaveCheckpoint:
    """Open and validate a sealed checkpoint (raises on any tampering)."""
    return EnclaveCheckpoint.from_bytes(open_envelope(key, envelope, aad=b"enclave-ckpt"))


# ---------------------------------------------------------------------------
# Chunked, resumable transfer framing
# ---------------------------------------------------------------------------
#
# The sealed envelope is opaque ciphertext; how it crosses the wire is an
# *untrusted transport* concern.  Chunking it lets an interrupted transfer
# resume from the missing chunks instead of restarting from byte zero, and
# the per-chunk frame digest lets the receiver detect line corruption and
# request a retransmit long before the (enclave-internal, authoritative)
# envelope MAC check would fail the whole migration.  None of this is in
# the TCB: a lying reassembler merely produces a blob the enclave rejects.

DEFAULT_CHUNK_BYTES = 16 * 1024

# Binary frame: magic | seq u32 | n_chunks u32 | offset u64 | total u64
#               | sha256(data) | data.  Fixed-offset fields parse with
# memoryview slices, and the payload rides as raw bytes — no JSON, no hex
# doubling, one copy per frame (the join into the contiguous wire bytes).
_FRAME_MAGIC = b"CHNK2\x00"
_FRAME_HEADER_LEN = len(_FRAME_MAGIC) + 4 + 4 + 8 + 8 + 32


def chunk_blob(blob: bytes, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> list[bytes]:
    """Split an opaque blob into self-describing, re-orderable frames."""
    if chunk_bytes <= 0:
        raise ChunkError(f"chunk size must be positive, got {chunk_bytes}")
    view = memoryview(blob)
    total = len(view)
    offsets = range(0, total, chunk_bytes) if total else (0,)
    n_chunks = len(offsets)
    frames = []
    for seq, offset in enumerate(offsets):
        data = view[offset : offset + chunk_bytes]
        frames.append(
            b"".join(
                [
                    _FRAME_MAGIC,
                    seq.to_bytes(4, "big"),
                    n_chunks.to_bytes(4, "big"),
                    offset.to_bytes(8, "big"),
                    total.to_bytes(8, "big"),
                    sha256(data),
                    data,
                ]
            )
        )
    return frames


class ChunkReassembler:
    """Receiver side of the chunked transfer: order- and loss-tolerant.

    Chunks may arrive in any order; duplicates are ignored; a frame whose
    digest does not match (line corruption) raises :class:`ChunkError` so
    the sender retransmits exactly that chunk.  ``missing()`` names what
    a resumed transfer still owes.
    """

    def __init__(self) -> None:
        self.total: int | None = None
        self.n_chunks: int | None = None
        self._parts: dict[int, bytes] = {}
        self._offsets: dict[int, int] = {}
        self.duplicates_seen = 0

    def accept(self, frame: bytes) -> bool:
        """Ingest one frame; returns True when it carried new data."""
        view = memoryview(frame)
        if len(view) < _FRAME_HEADER_LEN or view[: len(_FRAME_MAGIC)] != _FRAME_MAGIC:
            raise ChunkError("malformed chunk frame: bad magic or truncated header")
        cursor = len(_FRAME_MAGIC)
        seq = int.from_bytes(view[cursor : cursor + 4], "big")
        n_chunks = int.from_bytes(view[cursor + 4 : cursor + 8], "big")
        offset = int.from_bytes(view[cursor + 8 : cursor + 16], "big")
        total = int.from_bytes(view[cursor + 16 : cursor + 24], "big")
        digest = bytes(view[cursor + 24 : cursor + 56])
        data = bytes(view[cursor + 56 :])
        if sha256(data) != digest:
            raise ChunkError(f"chunk {seq} failed its frame digest (line corruption)")
        if self.total is None:
            self.total, self.n_chunks = total, n_chunks
        elif (total, n_chunks) != (self.total, self.n_chunks):
            raise ChunkError("chunk frame disagrees with the stream geometry")
        if not 0 <= seq < n_chunks:
            raise ChunkError(f"chunk sequence {seq} out of range [0, {n_chunks})")
        if seq in self._parts:
            self.duplicates_seen += 1
            return False
        self._parts[seq] = data
        self._offsets[seq] = offset
        return True

    @property
    def complete(self) -> bool:
        return self.n_chunks is not None and len(self._parts) == self.n_chunks

    def missing(self) -> list[int]:
        """Chunk sequence numbers a resumed transfer still has to send."""
        if self.n_chunks is None:
            return []
        return [seq for seq in range(self.n_chunks) if seq not in self._parts]

    def assemble(self) -> bytes:
        if not self.complete:
            raise ChunkError(f"stream incomplete: missing chunks {self.missing()}")
        cursor = 0
        pieces = []
        for seq in range(self.n_chunks or 0):
            if self._offsets[seq] != cursor:
                raise ChunkError(
                    f"chunk {seq} claims offset {self._offsets[seq]}, expected {cursor}"
                )
            pieces.append(self._parts[seq])
            cursor += len(self._parts[seq])
        blob = b"".join(pieces)
        if self.total is not None and len(blob) != self.total:
            raise ChunkError(
                f"assembled {len(blob)} bytes but the stream declared {self.total}"
            )
        return blob
