"""Migration orchestration: the untrusted glue between both machines.

The orchestrator is the cloud operator's tooling: it moves messages, asks
IAS for verification reports, and pokes both SGX libraries — but it is
*outside* the TCB.  Every security-relevant decision (who gets the key,
whether the checkpoint is intact, whether the replayed CSSA is right) is
made inside the enclaves by :mod:`repro.sdk.control`; a hostile
orchestrator can only cause the protocol to abort, never to leak or fork.

The flow implements §III's three operations with §V's defenses:

1. source control thread checkpoints (two-phase, engine-scheduled);
2. target rebuilds a virgin enclave from the same image;
3. attested DH channel (source attests target via IAS; target verifies
   the source's image-key signature);
4. checkpoint transfer, K_migrate last, source self-destroy;
5. target restores memory, the library replays CSSA, the control thread
   verifies and goes live.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.authenc import Envelope
from repro.errors import MigrationAborted, MigrationError
from repro.migration.testbed import Testbed
from repro.sdk import control
from repro.sdk.host import HostApplication, WorkerSpec
from repro.serde import pack, unpack
from repro.sgx.structures import Quote


@dataclass
class EnclaveMigrationResult:
    """Outcome of migrating one enclave application."""

    target_app: HostApplication
    replay_plan: dict[int, int]
    checkpoint_bytes: int
    transferred_bytes: int


class MigrationOrchestrator:
    """Drives enclave migrations across a :class:`Testbed`."""

    def __init__(self, testbed: Testbed) -> None:
        self.tb = testbed

    # ------------------------------------------------------------- pieces
    def checkpoint_enclave(self, app: HostApplication) -> None:
        """Run the source control thread to completion (steps ③-⑤)."""
        app.library.last_checkpoint = None
        app.library.on_migration_signal()
        self.tb.source_os.run_until(lambda: app.library.last_checkpoint is not None)

    def build_virgin_target(self, app: HostApplication) -> HostApplication:
        """Step-1: same image, fresh enclave, on the target machine."""
        target_app = HostApplication(
            self.tb.target,
            self.tb.target_os,
            app.image,
            app.workers,
            owner=None,  # no user involvement during migration (§III)
            name=f"{app.image.name}-migrated",
        )
        # The host application's own memory (loop positions, results)
        # travels with the VM RAM; mirror it onto the target instance.
        target_app.completed_iterations = list(app.completed_iterations)
        target_app.results = {k: list(v) for k, v in app.results.items()}
        target_app.library.launch(owner=None)
        return target_app

    def establish_channel(self, app: HostApplication, target_app: HostApplication) -> None:
        """Step-2: mutual authentication + DH between control threads."""
        net = self.tb.network
        quote, target_pub = target_app.library.control_call(
            control.target_channel_request, self.tb.target.quoting_enclave
        )
        request = net.transfer(
            "channel-request", pack({"quote": _quote_to_dict(quote), "dh": target_pub})
        )
        fields = unpack(request)
        delivered_quote = _quote_from_dict(fields["quote"])
        # The source fetches an AVR from IAS (WAN) and verifies it inside.
        net.transfer("ias-quote", pack({"quote": _quote_to_dict(delivered_quote)}), wan=True)
        avr = self.tb.ias.verify_quote(delivered_quote)
        source_pub, signature = app.library.control_call(
            control.source_open_channel, avr, fields["dh"]
        )
        answer = net.transfer("channel-answer", pack({"dh": source_pub, "sig": signature}))
        answer_fields = unpack(answer)
        target_app.library.control_call(
            control.target_complete_channel, answer_fields["dh"], answer_fields["sig"]
        )

    def transfer_checkpoint(self, app: HostApplication) -> bytes:
        """Ship the sealed checkpoint (the adversary sees ciphertext)."""
        envelope = app.library.last_checkpoint.envelope
        return self.tb.network.transfer("checkpoint", envelope.to_bytes())

    def handoff_key(self, app: HostApplication, target_app: HostApplication) -> None:
        """K_migrate moves last; the source self-destroys (§V-B)."""
        sealed = app.library.control_call(control.source_release_key)
        delivered = self.tb.network.transfer("kmigrate", sealed)
        target_app.library.control_call(control.target_receive_key, delivered)

    def restore(self, target_app: HostApplication, checkpoint_bytes: bytes) -> dict[int, int]:
        """Steps 3-4 on the target: restore, replay, verify, go live."""
        library = target_app.library
        plan = library.control_call(control.target_restore_memory, checkpoint_bytes)
        library.replay_cssa(plan)
        library.control_call(control.target_verify_and_finish, checkpoint_bytes)
        return plan

    def cancel(self, app: HostApplication) -> None:
        """Abort a migration before the key handoff; workers resume."""
        app.library.control_call(control.source_cancel_migration)
        app.library.last_checkpoint = None

    # ------------------------------------------------------------- full flow
    def migrate_enclave(self, app: HostApplication) -> EnclaveMigrationResult:
        """Migrate one enclave application source → target, end to end."""
        if app.library.last_checkpoint is None:
            self.checkpoint_enclave(app)
        checkpoint = app.library.last_checkpoint
        if checkpoint is None:  # pragma: no cover - guard
            raise MigrationError("checkpoint generation failed")

        bytes_before = self.tb.network.bytes_transferred
        target_app = self.build_virgin_target(app)
        self.establish_channel(app, target_app)
        delivered_checkpoint = self.transfer_checkpoint(app)
        self.handoff_key(app, target_app)
        try:
            plan = self.restore(target_app, delivered_checkpoint)
        except MigrationError:
            # The target refused the state; with the source destroyed and
            # K_migrate spent, this migration is dead — surface it.
            raise
        target_app.respawn_after_restore(plan)
        self.tb.target_os.end_migration()
        return EnclaveMigrationResult(
            target_app=target_app,
            replay_plan=plan,
            checkpoint_bytes=checkpoint.envelope.size,
            transferred_bytes=self.tb.network.bytes_transferred - bytes_before,
        )


def _quote_to_dict(quote: Quote) -> dict:
    return {
        "mrenclave": quote.mrenclave,
        "mrsigner": quote.mrsigner,
        "attributes": quote.attributes,
        "platform_id": quote.platform_id,
        "report_data": quote.report_data,
        "signature": quote.signature,
    }


def _quote_from_dict(fields: dict) -> Quote:
    return Quote(
        mrenclave=fields["mrenclave"],
        mrsigner=fields["mrsigner"],
        attributes=fields["attributes"],
        platform_id=fields["platform_id"],
        report_data=fields["report_data"],
        signature=fields["signature"],
    )
