"""Migration orchestration: the untrusted glue between both machines.

The orchestrator is the cloud operator's tooling: it moves messages, asks
IAS for verification reports, and pokes both SGX libraries — but it is
*outside* the TCB.  Every security-relevant decision (who gets the key,
whether the checkpoint is intact, whether the replayed CSSA is right) is
made inside the enclaves by :mod:`repro.sdk.control`; a hostile
orchestrator can only cause the protocol to abort, never to leak or fork.

The flow implements §III's three operations with §V's defenses:

1. source control thread checkpoints (two-phase, engine-scheduled);
2. target rebuilds a virgin enclave from the same image;
3. attested DH channel (source attests target via IAS; target verifies
   the source's image-key signature);
4. checkpoint transfer, K_migrate last, source self-destroy;
5. target restores memory, the library replays CSSA, the control thread
   verifies and goes live.

Degraded-mode operation (the failure-handling layer added around that
flow) is a retry/abort state machine whose rules keep the paper's
invariants intact under arbitrary infrastructure faults:

* Any failure *before* ``source_release_key`` is recoverable: the source
  cancels (wiping K_migrate, resuming its workers), the half-built
  target is destroyed, and the retry renegotiates everything — new
  checkpoint, new K_migrate, new attested channel — from scratch.
* ``source_release_key`` is the point of no return.  The source is
  SPENT the instant the sealed key leaves the enclave; the orchestrator
  may retransmit the *same* sealed blob (resending ciphertext is
  harmless) but can never coax the source back to life.  If the key is
  lost — a partition outlives the retries, the target crashes after
  receipt — the migration aborts with *zero* live instances:
  single-instance beats availability, by design.
* The checkpoint crosses the wire chunked; lost / corrupted / reordered
  / duplicated chunks are healed by retransmitting exactly the missing
  ones (resumable transfer).  Framing is untrusted — end-to-end
  integrity still rests solely on the envelope MAC checked in-enclave.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.durability import wal
from repro.durability.journal import Journal
from repro.errors import (
    ChunkError,
    CryptoError,
    IntegrityError,
    LinkPartitioned,
    LinkTimeout,
    MachineCrash,
    MigrationAborted,
    MigrationError,
    NetworkFault,
    PartyCrash,
    ReproError,
    SelfDestroyed,
    StepTimeout,
)
from repro.faults.plan import (
    STEP_BUILD_TARGET,
    STEP_CHECKPOINT,
    STEP_ESTABLISH_CHANNEL,
    STEP_HANDOFF_KEY,
    STEP_HANDOFF_STORAGE,
    STEP_RESTORE,
    STEP_TRANSFER_CHECKPOINT,
)
from repro.migration.checkpoint import DEFAULT_CHUNK_BYTES, ChunkReassembler, chunk_blob
from repro.sim.engine import EngineStall
from repro.migration.testbed import Testbed
from repro.sdk import control
from repro.sdk.host import HostApplication, WorkerSpec
from repro.serde import SerdeError, pack, unpack
from repro.sgx.structures import Quote
from repro.telemetry import ensure_telemetry


@dataclass(frozen=True)
class RetryPolicy:
    """Degraded-mode knobs for one migration.

    The default policy reproduces the seed behaviour exactly: one
    attempt, no chunking, no backoff — a fault surfaces as the original
    exception.  :data:`FAULT_TOLERANT_RETRY` is the production-shaped
    preset the adversarial matrix runs under.
    """

    #: Whole-protocol attempts (1 = fail on first fault, seed behaviour).
    max_attempts: int = 1
    #: First retry backoff on the virtual clock; doubles per retry.
    base_backoff_ns: int = 8_000_000
    backoff_multiplier: int = 2
    #: Engine-round budget for any single engine-driven step (the fix
    #: for the previously unbounded ``checkpoint_enclave`` wait).
    max_step_rounds: int = 2_000_000
    #: Chunk size for the resumable checkpoint transfer; ``None`` ships
    #: the envelope in one message exactly like the seed protocol.
    chunk_bytes: int | None = None
    #: Retransmission passes for the chunk stream / the sealed key.
    max_transfer_rounds: int = 5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.max_transfer_rounds < 1:
            raise ValueError("max_transfer_rounds must be at least 1")
        if self.chunk_bytes is not None and self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be positive (or None)")

    def next_backoff(self, backoff_ns: int) -> int:
        return backoff_ns * self.backoff_multiplier


#: The preset used by the fault matrix and the CLI's degraded-mode demo.
FAULT_TOLERANT_RETRY = RetryPolicy(
    max_attempts=5,
    base_backoff_ns=8_000_000,
    backoff_multiplier=2,
    max_step_rounds=2_000_000,
    chunk_bytes=DEFAULT_CHUNK_BYTES,
    max_transfer_rounds=5,
)


@dataclass
class MigrationStats:
    """Degraded-mode counters, surfaced in the CLI and benchmarks."""

    attempts: int = 0
    retries: int = 0
    aborts: int = 0
    chunk_retransmits: int = 0
    key_retransmits: int = 0
    step_timeouts: int = 0
    crashes_seen: int = 0
    duplicate_chunks_ignored: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "aborts": self.aborts,
            "chunk_retransmits": self.chunk_retransmits,
            "key_retransmits": self.key_retransmits,
            "step_timeouts": self.step_timeouts,
            "crashes_seen": self.crashes_seen,
            "duplicate_chunks_ignored": self.duplicate_chunks_ignored,
        }


@dataclass
class EnclaveMigrationResult:
    """Outcome of migrating one enclave application."""

    target_app: HostApplication
    replay_plan: dict[int, int]
    checkpoint_bytes: int
    transferred_bytes: int
    attempts: int = 1
    stats: MigrationStats = field(default_factory=MigrationStats)


class MigrationOrchestrator:
    """Drives enclave migrations across a :class:`Testbed`.

    ``retry`` selects the failure-handling behaviour; ``faults`` attaches
    a :class:`~repro.faults.injector.FaultInjector` whose crash points
    fire at step boundaries (its message faults act through the network).
    """

    def __init__(
        self,
        testbed: Testbed,
        retry: RetryPolicy | None = None,
        faults=None,
    ) -> None:
        self.tb = testbed
        self.retry = retry or RetryPolicy()
        self.faults = faults
        self.stats = MigrationStats()
        self.tel = ensure_telemetry(testbed)
        self._run_start_ns = 0
        if faults is not None:
            faults.attach(testbed)
        # Point-of-no-return bookkeeping for the current migration.
        self._key_released = False
        self._key_delivered = False
        self._source_crashed = False
        # Durability: the orchestrator's own write-ahead log plus the
        # in-flight target, both consulted by crash recovery.
        self._wal: Journal | None = None
        self._current_target: HostApplication | None = None
        self._lineage: int | None = None

    # ------------------------------------------------------------- pieces
    def checkpoint_enclave(self, app: HostApplication) -> None:
        """Run the source control thread to completion (steps ③-⑤).

        The wait is bounded by ``retry.max_step_rounds``: a wedged
        control thread (a worker that never reaches the quiescent point)
        surfaces as :class:`StepTimeout` instead of hanging the testbed.
        """
        app.library.last_checkpoint = None
        app.library.on_migration_signal()
        self._bounded_wait(
            lambda: app.library.last_checkpoint is not None, STEP_CHECKPOINT
        )

    def _bounded_wait(self, predicate, step: str) -> None:
        try:
            self.tb.source_os.run_until(
                predicate, max_rounds=self.retry.max_step_rounds
            )
        except ReproError as exc:
            # Only scheduling failures become timeouts: round exhaustion
            # (bare ReproError) and engine stalls.  Anything more specific
            # is enclave code failing and must keep its own type.
            if type(exc) is not ReproError and not isinstance(exc, EngineStall):
                raise
            self.stats.step_timeouts += 1
            self.tel.counter("migration.step_timeouts_total", step=step).inc()
            self.tb.trace.emit("migration", "step_timeout", step=step)
            raise StepTimeout(step, str(exc)) from exc

    def build_virgin_target(self, app: HostApplication) -> HostApplication:
        """Step-1: same image, fresh enclave, on the target machine."""
        target_app = HostApplication(
            self.tb.target,
            self.tb.target_os,
            app.image,
            app.workers,
            owner=None,  # no user involvement during migration (§III)
            name=f"{app.image.name}-migrated",
        )
        # The host application's own memory (loop positions, results)
        # travels with the VM RAM; mirror it onto the target instance.
        target_app.completed_iterations = list(app.completed_iterations)
        target_app.results = {k: list(v) for k, v in app.results.items()}
        target_app.library.launch(owner=None)
        return target_app

    def establish_channel(self, app: HostApplication, target_app: HostApplication) -> None:
        """Step-2: mutual authentication + DH between control threads."""
        net = self.tb.network
        quote, target_pub = target_app.library.control_call(
            control.target_channel_request, self.tb.target.quoting_enclave
        )
        request = net.transfer(
            "channel-request", pack({"quote": _quote_to_dict(quote), "dh": target_pub})
        )
        fields = unpack(request)
        delivered_quote = _quote_from_dict(fields["quote"])
        # The source fetches an AVR from IAS (WAN) and verifies it inside.
        net.transfer("ias-quote", pack({"quote": _quote_to_dict(delivered_quote)}), wan=True)
        avr = self.tb.ias.verify_quote(delivered_quote)
        source_pub, signature = app.library.control_call(
            control.source_open_channel, avr, fields["dh"]
        )
        answer = net.transfer("channel-answer", pack({"dh": source_pub, "sig": signature}))
        answer_fields = unpack(answer)
        target_app.library.control_call(
            control.target_complete_channel, answer_fields["dh"], answer_fields["sig"]
        )

    def transfer_checkpoint(self, app: HostApplication) -> bytes:
        """Ship the sealed checkpoint (the adversary sees ciphertext).

        With ``retry.chunk_bytes`` unset this is the seed protocol: one
        message under the ``"checkpoint"`` label.  Otherwise the envelope
        crosses as a resumable chunk stream (``"checkpoint-chunk"``):
        lost or corrupted chunks are retransmitted individually, and a
        partition pauses the stream — surviving chunks are never resent.
        """
        blob = app.library.last_checkpoint.envelope.to_bytes()
        if self.retry.chunk_bytes is None:
            return self.tb.network.transfer("checkpoint", blob)
        return self._transfer_chunked(blob)

    def _transfer_chunked(self, blob: bytes) -> bytes:
        net = self.tb.network
        frames = chunk_blob(blob, self.retry.chunk_bytes)
        reassembler = ChunkReassembler()
        if self.faults is not None:
            order = self.faults.chunk_send_order("checkpoint-chunk", len(frames))
        else:
            order = list(range(len(frames)))
        pending = order
        backoff = self.retry.base_backoff_ns
        for round_no in range(self.retry.max_transfer_rounds):
            failed: list[int] = []
            for seq in pending:
                try:
                    delivered = net.transfer("checkpoint-chunk", frames[seq])
                except LinkTimeout:
                    failed.append(seq)
                    continue
                except LinkPartitioned:
                    # The link is down: everything not yet delivered waits
                    # for the healing backoff below.
                    failed.extend(s for s in pending if s not in failed and s != seq)
                    failed.append(seq)
                    break
                try:
                    reassembler.accept(delivered)
                except ChunkError:
                    failed.append(seq)
            self.stats.duplicate_chunks_ignored = reassembler.duplicates_seen
            if reassembler.complete:
                return reassembler.assemble()
            # Resume: only what is still missing goes out again.
            pending = [s for s in failed if s in set(reassembler.missing())] or (
                reassembler.missing()
            )
            if round_no + 1 < self.retry.max_transfer_rounds:
                self.stats.chunk_retransmits += len(pending)
                self.tel.counter("migration.chunk_retransmits_total").inc(len(pending))
                self.tb.trace.emit(
                    "migration", "chunk_resend", n=len(pending), round=round_no + 1
                )
                self.tb.clock.advance(backoff)
                backoff = self.retry.next_backoff(backoff)
        raise LinkTimeout(
            f"checkpoint transfer incomplete after "
            f"{self.retry.max_transfer_rounds} rounds: missing {reassembler.missing()}"
        )

    def storage_pending(self, app: HostApplication) -> bool:
        """Negotiation: does the source have a sealed-storage namespace?

        Decided from the (untrusted) durable store's version counter —
        negotiation is an optimization, not a security decision: every
        freshness and single-lineage rule is enforced inside the enclaves
        regardless of what the orchestrator chooses to ship.  Enclaves
        without persistent state skip the step entirely, so their
        protocol (journal record counts included) is byte-identical to
        the pre-storage one.
        """
        durable = getattr(self.tb, "durable", None)
        if durable is None:
            return False
        ns = wal.storage_namespace(self.tb.source.name, app.image.name)
        return durable.counter(ns) > 0

    def handoff_storage(self, app: HostApplication, target_app: HostApplication) -> int:
        """The negotiated `handoff-storage` step: move the namespace.

        The source re-seals (table, version) under the channel session
        key with the channel sequence bound inside; the target re-binds
        it to its own EGETKEY key and counter bank.  Runs strictly before
        the key handoff — a failure here is still renegotiable, so the
        delivery loop re-raises transport faults instead of aborting.
        """
        sealed = app.library.control_call(control.source_export_storage)
        # Ciphertext under the session key, same trust story as the
        # checkpoint envelope: journaling it lets recovery redeliver.
        self._wal_append(wal.WAL_STORAGE, {"sealed": sealed})
        backoff = self.retry.base_backoff_ns
        last_exc: Exception | None = None
        for round_no in range(self.retry.max_transfer_rounds):
            if round_no:
                self.tel.counter("migration.storage_retransmits_total").inc()
                self.tb.trace.emit("migration", "storage_resend", round=round_no)
                self.tb.clock.advance(backoff)
                backoff = self.retry.next_backoff(backoff)
            try:
                delivered = self.tb.network.transfer("storage-handoff", sealed)
                version = target_app.library.control_call(
                    control.target_import_storage, delivered
                )
                self._wal_append(wal.WAL_STORAGE_DELIVERED, {"version": version})
                return version
            except (NetworkFault, IntegrityError, CryptoError, SerdeError) as exc:
                last_exc = exc
                if self.retry.max_attempts <= 1:
                    raise  # seed behaviour: no degraded-mode retries
        assert last_exc is not None
        raise last_exc  # pre-point-of-no-return: the attempt loop renegotiates

    def handoff_key(self, app: HostApplication, target_app: HostApplication) -> None:
        """K_migrate moves last; the source self-destroys (§V-B).

        ``source_release_key`` fires exactly once per migration — the
        point of no return.  Delivery of the resulting sealed blob is
        retried (same ciphertext; a replayed copy is useless to anyone
        without the session key) so a dropped or corrupted kmigrate
        message does not strand an otherwise complete migration.
        """
        sealed = app.library.control_call(control.source_release_key)
        self._key_released = True
        # The sealed blob is ciphertext under the session key; journaling
        # it lets recovery *redeliver* it after a crash, which is exactly
        # as harmless as the retransmission loop below.
        self._wal_append(wal.WAL_RELEASE, {"sealed": sealed})
        backoff = self.retry.base_backoff_ns
        last_exc: Exception | None = None
        for round_no in range(self.retry.max_transfer_rounds):
            if round_no:
                self.stats.key_retransmits += 1
                self.tel.counter("migration.key_retransmits_total").inc()
                self.tb.trace.emit("migration", "key_resend", round=round_no)
                self.tb.clock.advance(backoff)
                backoff = self.retry.next_backoff(backoff)
            try:
                delivered = self.tb.network.transfer("kmigrate", sealed)
                target_app.library.control_call(control.target_receive_key, delivered)
                self._key_delivered = True
                self._wal_append(wal.WAL_DELIVERED)
                return
            except (NetworkFault, IntegrityError, CryptoError, SerdeError) as exc:
                last_exc = exc
                if self.retry.max_attempts <= 1:
                    raise  # seed behaviour: no degraded-mode retries
        raise MigrationAborted(
            "K_migrate was released but could not be delivered; the source "
            "has self-destroyed and no live instance holds the key"
        ) from last_exc

    def restore(self, target_app: HostApplication, checkpoint_bytes: bytes) -> dict[int, int]:
        """Steps 3-4 on the target: restore, replay, verify, go live."""
        library = target_app.library
        plan = library.control_call(control.target_restore_memory, checkpoint_bytes)
        library.replay_cssa(plan)
        library.control_call(control.target_verify_and_finish, checkpoint_bytes)
        return plan

    def cancel(self, app: HostApplication) -> None:
        """Abort a migration before the key handoff; workers resume."""
        app.library.control_call(control.source_cancel_migration)
        app.library.last_checkpoint = None
        self._wal_append(wal.WAL_CANCEL)

    # ------------------------------------------------------------- full flow
    def migrate_enclave(self, app: HostApplication) -> EnclaveMigrationResult:
        """Migrate one enclave application source → target, end to end.

        With the default policy this is the seed's single-shot protocol.
        With retries enabled, transient faults are healed in place (see
        the step helpers) or by cancelling and renegotiating from
        scratch; exhausting every recovery raises
        :class:`MigrationAborted` with the invariants intact.
        """
        self._run_start_ns = self.tb.clock.now_ns
        with self.tel.span("migration.run", image=app.image.name) as run_span:
            # One trace id per migration run: every wire record sent while
            # this span is open carries it (see repro.telemetry.causal).
            self.tel.tracer.trace_id = f"mig-{run_span.span_id}"
            run_span.attrs["trace_id"] = self.tel.tracer.trace_id
            # The trace id also keys this run's metric scope: chain hops
            # and redrives on one testbed each report their own deltas
            # instead of folding into one accumulated registry.
            self.tel.begin_run(self.tel.tracer.trace_id)
            try:
                return self._run_migration(app)
            finally:
                self.tel.end_run(self.tel.tracer.trace_id)

    def _run_migration(self, app: HostApplication) -> EnclaveMigrationResult:
        self._key_released = False
        self._key_delivered = False
        self._source_crashed = False
        self._current_target = None
        self._wal = self._make_wal(app)
        self._wal_append(wal.WAL_BEGIN, {"image": app.image.name})
        monitor = getattr(self.tb, "monitor", None)
        if monitor is not None:
            self._lineage = monitor.register_lineage(app)
        if self.retry.max_attempts <= 1 and self.faults is None:
            return self._attempt_migration(app)

        bytes_before = self.tb.network.bytes_transferred
        backoff = self.retry.base_backoff_ns
        last_exc: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            self.stats.attempts = attempt
            if attempt > 1:
                self.stats.retries += 1
                self.tel.counter("migration.retries_total").inc()
                self.tb.trace.emit("migration", "retry", attempt=attempt)
                self.tb.clock.advance(backoff)
                backoff = self.retry.next_backoff(backoff)
            try:
                return self._attempt_migration(app, bytes_baseline=bytes_before)
            except MigrationAborted:
                self._record_abort("aborted")
                raise
            except PartyCrash as exc:
                # A party crash ends the protocol run where it stands: no
                # cleanup, no retry — only journal-driven recovery may
                # touch the migration now.  Model the physical effect of
                # the crash (the party's volatile state is gone) and stop.
                self._apply_party_crash(exc, app)
                raise
            except MachineCrash as exc:
                last_exc = exc
                self.stats.crashes_seen += 1
                self.tel.counter("migration.crashes_seen_total", side=exc.side).inc()
                if exc.side == "source":
                    self._abort(
                        app,
                        f"source machine crashed at step {exc.step!r}; its "
                        "enclave cannot be rebuilt from volatile state",
                        cause=exc,
                    )
                if self._past_point_of_no_return():
                    self._abort(
                        app,
                        "target crashed after K_migrate was released; the key "
                        "is lost and the source has self-destroyed",
                        cause=exc,
                    )
                # Target crashed pre-release: renegotiate with a new target.
            except (SelfDestroyed, MigrationError, NetworkFault, ReproError) as exc:
                last_exc = exc
                if self._past_point_of_no_return() or isinstance(exc, SelfDestroyed):
                    self._abort(
                        app,
                        "migration failed after the point of no return "
                        f"({type(exc).__name__}: {exc})",
                        cause=exc,
                    )
        self._abort(
            app,
            f"gave up after {self.retry.max_attempts} attempts "
            f"({type(last_exc).__name__ if last_exc else 'unknown'}: {last_exc})",
            cause=last_exc,
        )
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------- attempt
    def _attempt_migration(
        self, app: HostApplication, bytes_baseline: int | None = None
    ) -> EnclaveMigrationResult:
        """One full pass of the protocol; cleans up its target on failure."""
        bytes_before = (
            self.tb.network.bytes_transferred if bytes_baseline is None else bytes_baseline
        )
        self.tel.counter("migration.attempts_total").inc()
        target_app: HostApplication | None = None
        try:
            with self.tel.span(
                "migration.attempt", attempt=max(self.stats.attempts, 1)
            ):
                # The stop-and-copy window: source workers quiesce at the
                # first checkpoint instruction and the application is only
                # live again once the target resumes — for the enclave
                # protocol the whole attempt *is* downtime.
                with self.tel.span("migration.stop_and_copy") as stop_and_copy:
                    with self.tel.span(
                        f"migration.step.{STEP_CHECKPOINT}", party="source"
                    ):
                        self._begin_step(app, STEP_CHECKPOINT)
                        if app.library.last_checkpoint is None:
                            self.checkpoint_enclave(app)
                        checkpoint = app.library.last_checkpoint
                        if checkpoint is None:  # pragma: no cover - guard
                            raise MigrationError("checkpoint generation failed")
                        self._wal_append(
                            wal.WAL_CHECKPOINT,
                            {
                                "envelope": checkpoint.envelope.to_bytes(),
                                "sequence": checkpoint.sequence,
                            },
                        )

                    with self.tel.span(
                        f"migration.step.{STEP_BUILD_TARGET}", party="target"
                    ):
                        self._begin_step(app, STEP_BUILD_TARGET)
                        target_app = self.build_virgin_target(app)
                        self._current_target = target_app
                        self._wal_append(wal.WAL_TARGET_BUILT)
                    with self.tel.span(f"migration.step.{STEP_ESTABLISH_CHANNEL}"):
                        self._begin_step(app, STEP_ESTABLISH_CHANNEL)
                        self.establish_channel(app, target_app)
                        self._wal_append(wal.WAL_CHANNEL)
                    with self.tel.span(f"migration.step.{STEP_TRANSFER_CHECKPOINT}"):
                        self._begin_step(app, STEP_TRANSFER_CHECKPOINT)
                        delivered_checkpoint = self.transfer_checkpoint(app)
                        self._wal_append(
                            wal.WAL_TRANSFERRED, {"blob": delivered_checkpoint}
                        )
                    # Crash faults scheduled at this step must fire even
                    # for storageless enclaves (the step exists in the
                    # protocol grammar either way); only the span and the
                    # actual transfer are negotiated away.
                    self._begin_step(app, STEP_HANDOFF_STORAGE)
                    if self.storage_pending(app):
                        with self.tel.span(f"migration.step.{STEP_HANDOFF_STORAGE}"):
                            self.handoff_storage(app, target_app)
                    with self.tel.span(f"migration.step.{STEP_HANDOFF_KEY}"):
                        self._begin_step(app, STEP_HANDOFF_KEY)
                        self.handoff_key(app, target_app)
                    with self.tel.span(
                        f"migration.step.{STEP_RESTORE}", party="target"
                    ):
                        self._begin_step(app, STEP_RESTORE)
                        plan = self.restore(target_app, delivered_checkpoint)
                        self._wal_append(
                            wal.WAL_RESTORED,
                            {"plan": {str(k): v for k, v in plan.items()}},
                        )
                    with self.tel.span("migration.step.resume", party="target"):
                        target_app.respawn_after_restore(plan)
                        self.tb.target_os.end_migration()
                    self._wal_append(wal.WAL_DONE)
                transferred = self.tb.network.bytes_transferred - bytes_before
                self._record_figures(stop_and_copy, transferred)
            monitor = getattr(self.tb, "monitor", None)
            if monitor is not None and self._lineage is not None:
                monitor.join_lineage(self._lineage, target_app)
            return EnclaveMigrationResult(
                target_app=target_app,
                replay_plan=plan,
                checkpoint_bytes=checkpoint.envelope.size,
                transferred_bytes=transferred,
                attempts=max(self.stats.attempts, 1),
                stats=self.stats,
            )
        except PartyCrash:
            raise  # no graceful cleanup: the crash left things as they are
        except BaseException:
            if target_app is not None:
                self._destroy_target(target_app)
                self._current_target = None
            self._recover_source(app)
            raise

    def _begin_step(self, app: HostApplication, step: str) -> None:
        if self.faults is None:
            return
        try:
            self.faults.step_started(step)
        except MachineCrash as exc:
            if exc.side == "source" and self._key_delivered:
                # The key and checkpoint already live on the target; the
                # source is no longer needed.  Its machine dying now costs
                # nothing but the (already spent) source instance.
                self.stats.crashes_seen += 1
                self.tel.counter("migration.crashes_seen_total", side=exc.side).inc()
                self._crash_source(app)
                return
            if exc.side == "source":
                self._crash_source(app)
            raise

    # ------------------------------------------------------------- durability
    def _make_wal(self, app: HostApplication) -> Journal | None:
        durable = getattr(self.tb, "durable", None)
        if durable is None:
            return None
        return Journal(
            durable,
            wal.orchestrator_journal_name(
                app.image.name, getattr(self.tb, "wal_epoch", 0)
            ),
            wal.PARTY_ORCHESTRATOR,
        )

    def _wal_append(self, kind: str, payload: dict | None = None) -> None:
        if self._wal is not None:
            self._wal.append(kind, payload)

    def _apply_party_crash(self, exc: PartyCrash, app: HostApplication) -> None:
        """Model the physical consequence of a party's process dying.

        A source or target crash takes its enclave (EPC contents are
        volatile) and freezes its host process.  An orchestrator crash
        kills only the driver — both machines keep running, which is
        exactly why its journal has to be enough to finish the job.
        """
        self.stats.crashes_seen += 1
        self.tel.counter("migration.crashes_seen_total", side=exc.party).inc()
        if exc.party == wal.PARTY_SOURCE:
            self._halt_process(app)
            self._crash_source(app)
        elif exc.party == wal.PARTY_TARGET and self._current_target is not None:
            self._halt_process(self._current_target)
            try:
                self._current_target.destroy()
            except ReproError:
                pass

    def _halt_process(self, app: HostApplication) -> None:
        for thread in app.process.threads:
            thread.suspended = True

    # ------------------------------------------------------------- recovery
    def _past_point_of_no_return(self) -> bool:
        """Key released but not safely installed in a live target."""
        return self._key_released

    def _source_alive(self, app: HostApplication) -> bool:
        return app.library.enclave_id is not None and not self._source_crashed

    def _crash_source(self, app: HostApplication) -> None:
        self._source_crashed = True
        if app.library.enclave_id is not None:
            app.library.destroy()

    def _destroy_target(self, target_app: HostApplication) -> None:
        try:
            target_app.destroy()
        except ReproError:  # pragma: no cover - teardown is best-effort
            pass

    def _recover_source(self, app: HostApplication) -> None:
        """Return the source to service if (and only if) that is safe."""
        if not self._source_alive(app) or self._key_released:
            return
        try:
            self.cancel(app)
        except PartyCrash:
            raise  # a crash during cleanup is still a crash
        except ReproError:  # pragma: no cover - cancel is best-effort
            pass

    def _record_figures(self, stop_and_copy, transferred: int) -> None:
        """Publish the attempt's headline numbers to the registry.

        ``migration.downtime_ns`` is *defined* as the stop-and-copy span's
        duration — the exporters, the timeline, and the benchmarks all
        read the same value, so the figures can never drift apart.
        """
        self.tel.gauge("migration.downtime_ns").set(stop_and_copy.duration_ns)
        self.tel.gauge("migration.total_ns").set(
            self.tb.clock.now_ns - self._run_start_ns
        )
        self.tel.gauge("migration.transferred_bytes").set(transferred)
        self.tel.counter("migration.completed_total").inc()

    def _record_abort(self, reason: str) -> None:
        self.stats.aborts += 1
        self.tel.counter("migration.aborts_total").inc()
        self.tb.trace.emit("migration", "abort", reason=reason)
        self._wal_append(wal.WAL_ABORT, {"reason": reason})

    def _abort(self, app: HostApplication, reason: str, cause: Exception | None) -> None:
        """Give up cleanly: no half-built target, no resurrectable source."""
        self._record_abort(reason)
        raise MigrationAborted(reason) from cause


def _quote_to_dict(quote: Quote) -> dict:
    return {
        "mrenclave": quote.mrenclave,
        "mrsigner": quote.mrsigner,
        "attributes": quote.attributes,
        "platform_id": quote.platform_id,
        "report_data": quote.report_data,
        "signature": quote.signature,
    }


def _quote_from_dict(fields: dict) -> Quote:
    return Quote(
        mrenclave=fields["mrenclave"],
        mrsigner=fields["mrsigner"],
        attributes=fields["attributes"],
        platform_id=fields["platform_id"],
        report_data=fields["report_data"],
        signature=fields["signature"],
    )
