"""The agent enclave: hiding attestation latency (§VI-D).

"The application developer needs to provide another enclave called the
agent enclave ... During a migration (or even before a migration), the
source control thread first remotely attests the agent enclave on the
target machine and then transfers the K_migrate to it in advance.  Hence,
when the VM is resumed on the target machine, all its enclaves can get
their migration keys from agent enclaves through local attestation."

The agent is an ordinary SDK enclave whose entries manage an escrow
table: each record is keyed by the *measurement* of the enclave it was
escrowed for, and is released exactly once, only to a locally attested
enclave with that measurement (preserving P-5, single instance).
"""

from __future__ import annotations

from repro.crypto.authenc import Envelope, open_envelope, seal_envelope
from repro.crypto.dh import MODP_2048_G, MODP_2048_P
from repro.crypto.hashes import sha256
from repro.crypto.keys import SymmetricKey
from repro.durability.wal import PARTY_AGENT
from repro.errors import AttestationError, ChannelError, MigrationError, NetworkFault
from repro.migration.orchestrator import RetryPolicy
from repro.sdk import control
from repro.sdk.builder import BuiltImage, SdkBuilder
from repro.sdk.control import _bind_report_data
from repro.sdk.host import HostApplication
from repro.sdk.image import OBJ_BOOT
from repro.sdk.program import EnclaveProgram
from repro.sdk.runtime import EnclaveRuntime
from repro.serde import pack, unpack
from repro.sgx.instructions import verify_report
from repro.sgx.structures import Report
from repro.telemetry.spans import maybe_span

OBJ_ESCROW = "escrow_table"


def build_agent_image(builder: SdkBuilder, name: str = "agent") -> BuiltImage:
    """Build the developer-provided agent enclave image."""
    program = EnclaveProgram(f"repro/agent-enclave-v1/{name}")
    return builder.build(
        name,
        program,
        n_workers=1,
        heap_pages=2,
        data_objects={OBJ_ESCROW: 2 * 4096},
    )


# ---------------------------------------------------------------------------
# In-enclave agent logic (runs on the agent's control TCS)
# ---------------------------------------------------------------------------

def agent_escrow_request(rt: EnclaveRuntime, qe) -> tuple:
    """Fresh DH half + quote, for the remote source to attest."""
    from repro.sdk.control import owner_key_request  # same shape, new purpose

    return owner_key_request(rt, qe, "agent-escrow")


def agent_store_escrow(
    rt: EnclaveRuntime, source_dh_public: int, sealed: bytes
) -> tuple[str, int, int]:
    """Accept an escrowed K_migrate from a remotely attested source.

    Returns ``(key_id, table_size, unreleased)`` so the untrusted service
    wrapper can report table growth to the invariant monitor — the table
    must never hold more entries than distinct measurements escrowed.
    """
    boot = rt.load_obj(OBJ_BOOT)
    if boot is None:
        raise ChannelError("no escrow exchange in progress")
    shared = pow(source_dh_public, boot["dh_private"], MODP_2048_P)
    session_key = SymmetricKey(sha256(shared.to_bytes(256, "big")), "agent-escrow")
    payload = unpack(
        open_envelope(session_key, Envelope.from_bytes(sealed), aad=b"agent-escrow")
    )
    table = rt.load_obj(OBJ_ESCROW, default={}) or {}
    key_id = payload["target_mr"].hex()
    if key_id in table and not table[key_id]["released"]:
        raise MigrationError("an unreleased escrow already exists for this measurement")
    table[key_id] = {
        "kmigrate": payload["kmigrate"],
        "sequence": payload["sequence"],
        # Sealed storage rides the escrow (the agent path has no direct
        # source↔target session); released alongside the key, exactly once.
        "storage": payload.get("storage"),
        "released": False,
    }
    rt.store_obj(OBJ_ESCROW, table)
    rt.delete_obj(OBJ_BOOT)
    # Durable escrow: the entry is sealed under the *agent's* EGETKEY key
    # so a rebuilt agent (same measurement, same CPU) can reload it.
    rt.journal_record(
        "escrow",
        {"key_id": key_id},
        secret={
            "key_id": key_id,
            "kmigrate": payload["kmigrate"],
            "sequence": payload["sequence"],
            "storage": payload.get("storage"),
        },
    )
    unreleased = sum(1 for entry in table.values() if not entry["released"])
    return key_id, len(table), unreleased


def agent_recover_escrow(rt: EnclaveRuntime, sealed: bytes, released: bool) -> None:
    """Crash recovery: reload one journaled escrow entry.

    ``sealed`` is a journal-sealed ``escrow`` record payload — only a
    same-measurement agent on this CPU can open it.  ``released`` comes
    from replaying the validated journal (an ``escrow-release`` record
    after the ``escrow`` record): dropping that record to get a second
    release would shorten the journal below its monotonic counter, which
    replay refuses as a rollback.
    """
    payload = rt.journal_unseal(sealed)
    table = rt.load_obj(OBJ_ESCROW, default={}) or {}
    table[payload["key_id"]] = {
        "kmigrate": payload["kmigrate"],
        "sequence": payload["sequence"],
        "storage": payload.get("storage"),
        "released": bool(released),
    }
    rt.store_obj(OBJ_ESCROW, table)


def agent_release_key(
    rt: EnclaveRuntime, report: Report, requester_dh_public: int
) -> tuple[int, bytes]:
    """Release an escrowed key to a *locally attested* enclave, once.

    The report must be addressed to this agent (verified with the agent's
    own report key via EGETKEY — only same-CPU reports pass), must bind
    the requester's DH half, and its MRENCLAVE selects the escrow record.
    """
    if not verify_report(rt.session, report):
        raise AttestationError("local attestation failed: report not for this agent/CPU")
    if report.report_data != _bind_report_data("agent-release", requester_dh_public):
        raise AttestationError("report does not bind the offered DH value")
    table = rt.load_obj(OBJ_ESCROW, default={}) or {}
    key_id = report.mrenclave.hex()
    record = table.get(key_id)
    if record is None:
        raise MigrationError("no escrowed key for this enclave measurement")
    if record["released"]:
        raise MigrationError("escrowed key was already released (single instance)")
    record["released"] = True
    rt.store_obj(OBJ_ESCROW, table)
    # Commit the release *before* the sealed key leaves the enclave: a
    # crash after this point recovers the entry as released, so the key
    # can never be handed out twice across a crash.
    rt.journal_record("escrow-release", {"key_id": key_id})

    private = rt.rdrand.getrandbits(256) | (1 << 255)
    agent_dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    shared = pow(requester_dh_public, private, MODP_2048_P)
    session_key = SymmetricKey(sha256(shared.to_bytes(256, "big")), "agent-release")
    sealed = seal_envelope(
        session_key,
        pack(
            {
                "kmigrate": record["kmigrate"],
                "sequence": record["sequence"],
                "storage": record.get("storage"),
            }
        ),
        rt.random_bytes(16),
        "aes",
        aad=b"agent-release",
    )
    return agent_dh_public, sealed.to_bytes()


# ---------------------------------------------------------------------------
# Host-side wiring
# ---------------------------------------------------------------------------

class AgentService:
    """Host wrapper around one agent enclave on the target machine."""

    def __init__(
        self, testbed, built_agent: BuiltImage, retry: RetryPolicy | None = None
    ) -> None:
        self.tb = testbed
        self.built = built_agent
        #: Same degraded-mode knobs as the orchestrator; the default (one
        #: attempt) keeps the seed behaviour of surfacing the first fault.
        self.retry = retry or RetryPolicy()
        self.app = HostApplication(
            testbed.target, testbed.target_os, built_agent.image, workers=[], name="agent"
        )
        # The agent is its own protocol party: record-granularity crash
        # faults address it as "agent", not as the target machine.
        if self.app.library.journal is not None:
            self.app.library.journal.party = PARTY_AGENT
        self.app.library.launch(owner=None)

    @property
    def mrenclave(self) -> bytes:
        return self.built.image.mrenclave

    def _transfer(self, label: str, payload: bytes, wan: bool = False) -> bytes:
        """Retry a transfer through transient faults (escrow messages are
        ciphertext under the exchange's session key: resending is safe)."""
        backoff = self.retry.base_backoff_ns
        for round_no in range(self.retry.max_transfer_rounds):
            try:
                return self.tb.network.transfer(label, payload, wan=wan)
            except NetworkFault:
                if round_no + 1 >= self.retry.max_transfer_rounds or (
                    self.retry.max_attempts <= 1
                ):
                    raise
                self.tb.trace.emit("migration", "agent_resend", label=label)
                self.tb.clock.advance(backoff)
                backoff = self.retry.next_backoff(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def escrow_from(self, source_app: HostApplication) -> None:
        """Pre-migration: source attests the agent and escrows K_migrate."""
        tb = self.tb
        with maybe_span(
            tb.trace, "agent.escrow", party="agent", image=source_app.image.name
        ):
            quote, agent_pub = self.app.library.control_call(
                agent_escrow_request, tb.target.quoting_enclave
            )
            self._transfer("agent-escrow-request", pack({"dh": agent_pub}))
            self._transfer("ias-quote", quote.signed_body(), wan=True)
            avr = tb.ias.verify_quote(quote)
            source_pub, sealed = source_app.library.control_call(
                control.source_escrow_to_agent, avr, agent_pub
            )
            delivered = self._transfer("agent-escrow", sealed)
            key_id, table_size, unreleased = self.app.library.control_call(
                agent_store_escrow, source_pub, delivered
            )
            tb.trace.emit(
                "agent",
                "escrow",
                key_id=key_id,
                table_size=table_size,
                unreleased=unreleased,
            )
        tb.trace.metrics.counter("agent.escrows_total").inc()

    def release_to(self, target_app: HostApplication) -> None:
        """Post-resume: local attestation hands the key to the enclave."""
        with maybe_span(
            self.tb.trace, "agent.release", party="agent", image=target_app.image.name
        ):
            report, requester_pub = target_app.library.control_call(
                control.target_request_key_from_agent, self.mrenclave
            )
            agent_pub, sealed = self.app.library.control_call(
                agent_release_key, report, requester_pub
            )
            self.tb.trace.emit(
                "agent", "release", key_id=target_app.image.mrenclave.hex()
            )
            target_app.library.control_call(
                control.target_install_agent_key, agent_pub, sealed
            )
        self.tb.trace.metrics.counter("agent.releases_total").inc()

    def recover(self) -> int:
        """Rebuild a crashed agent from its journal; returns entries reloaded.

        The journal is validated first (a rolled-back log raises and stops
        recovery); every sealed ``escrow`` record is reinstalled with its
        release status replayed from the subsequent ``escrow-release``
        records, so an already-released key stays released.
        """
        library = self.app.library
        journal = library.journal
        if journal is None:
            raise MigrationError("agent has no journal to recover from")
        records = journal.records()  # raises on corruption / rollback
        if library.enclave_id is None:
            library.launch(owner=None)
        released: set[str] = set()
        entries: dict[str, bytes] = {}
        for record in records:
            if record.kind == "escrow":
                key_id = record.payload["key_id"]
                entries[key_id] = record.payload["sealed"]
                released.discard(key_id)  # a re-escrow supersedes history
            elif record.kind == "escrow-release":
                released.add(record.payload["key_id"])
        for key_id, sealed in entries.items():
            library.control_call(
                agent_recover_escrow, sealed, key_id in released
            )
        return len(entries)
