"""N-hop migration chains: one enclave ping-ponged between two hosts.

The paper's protocol moves an enclave once, source → target.  Real
deployments re-migrate: maintenance drains a host, the enclave comes
back later, and the *same pair of machines* ends up hosting the same
image many times over.  This module drives that shape — hop k runs the
full §IV/§V protocol with the machines' roles swapped on every other
hop — and keeps three things straight that a single migration never has
to think about:

* **journal epochs** — journals are named by machine and image, so hop k
  would otherwise collide with hop k-2's logs on the same host and a
  stale ``done``/``released`` record would poison recovery.  Each hop
  stamps its journals with the hop number (see
  :func:`repro.durability.wal.enclave_journal_name`).
* **sealed-storage lineage** — the storage namespace follows the enclave
  across hops; the retired/handoff counter pair lets a host that was
  retired on hop k serve again on hop k+2 (the strictly increasing
  channel sequence makes the un-retire sound).
* **crash healing** — hops may carry fault plans; in-protocol retries
  heal what they can and :class:`~repro.durability.recovery.MigrationRecovery`
  re-drives the rest, so a chain soak can inject a crash at every
  handoff boundary and still demand a single live instance at the end.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import MachineCrash, MigrationAborted, PartyCrash
from repro.faults import FaultInjector
from repro.migration.orchestrator import (
    FAULT_TOLERANT_RETRY,
    MigrationOrchestrator,
    RetryPolicy,
)
from repro.migration.testbed import Testbed
from repro.sdk.host import HostApplication


@dataclass
class HopReport:
    """What happened on one hop of a chain."""

    hop: int
    source_name: str
    target_name: str
    #: The live instance after the hop (migrated or recovered).
    app: HostApplication
    #: "migrated" for a clean (possibly in-protocol-retried) run, or
    #: "recovered:<outcome>" when journal recovery finished the hop.
    outcome: str
    #: Crash/abort events this hop survived before completing.
    crashes_healed: int = 0
    #: Times the whole hop was re-driven after a rollback recovery.
    redrives: int = 0
    #: Trace/run ids of the migration runs this hop drove (one per
    #: drive: the clean run plus every re-drive gets its own scope).
    run_ids: list[str] = field(default_factory=list)
    #: Per-run metric deltas for those run ids (telemetry run scopes).
    run_metrics: dict[str, dict] = field(default_factory=dict)


@dataclass
class ChainReport:
    """Outcome of an N-hop chain."""

    hops: list[HopReport] = field(default_factory=list)

    @property
    def final_app(self) -> HostApplication:
        return self.hops[-1].app

    @property
    def crashes_healed(self) -> int:
        return sum(h.crashes_healed for h in self.hops)

    @property
    def recovered_hops(self) -> int:
        return sum(1 for h in self.hops if h.outcome != "migrated")

    def all_run_ids(self) -> list[str]:
        """Every per-migration run id across the chain, in hop order."""
        return [rid for hop in self.hops for rid in hop.run_ids]

    def downtime_sketch(self, relative_error: float = 0.01):
        """A mergeable quantile sketch of per-hop downtime (p50/p95/p99).

        This is the fleet-shaped answer to "what does an N-hop chain's
        downtime distribution look like" — each hop's scoped
        ``migration.downtime_ns`` feeds one observation.
        """
        from repro.telemetry.sketch import QuantileSketch

        sketch = QuantileSketch(relative_error=relative_error)
        for hop in self.hops:
            for delta in hop.run_metrics.values():
                value = delta.get("migration.downtime_ns")
                if isinstance(value, (int, float)) and value >= 0:
                    sketch.observe(value)
        return sketch


def hop_view(tb: Testbed, hop: int) -> Testbed:
    """A role-correct view of ``tb`` for hop ``hop`` (1-indexed).

    Odd hops run in the base orientation; even hops swap the machines.
    The view shares every piece of infrastructure (clock, network,
    durable store, monitor, telemetry) with the base testbed — only the
    role labels move.  The hop number becomes the journal epoch: the
    orchestrator WAL's via ``wal_epoch`` on the view, the target
    enclave's via ``journal_epoch`` on the machine (read when the
    target's SGX library is constructed, so it must be stamped before
    the virgin target is built — i.e. here).
    """
    if hop % 2 == 1:
        view = dataclasses.replace(tb)
    else:
        view = dataclasses.replace(
            tb,
            source=tb.target,
            target=tb.source,
            source_vm=tb.target_vm,
            target_vm=tb.source_vm,
            source_os=tb.target_os,
            target_os=tb.source_os,
        )
    view.wal_epoch = hop
    view.target.journal_epoch = hop
    return view


def run_chain(
    tb: Testbed,
    app: HostApplication,
    hops: int,
    plans=None,
    retry: RetryPolicy | None = None,
    max_redrives_per_hop: int = 4,
) -> ChainReport:
    """Migrate ``app`` back and forth for ``hops`` hops.

    ``plans`` maps hop number → :class:`~repro.faults.plan.FaultPlan`
    (dict or callable); a hop whose plan crashes a party is finished by
    journal recovery, or rolled back and re-driven without the plan —
    the fault fired, it is not owed a second shot.  Raises
    :class:`~repro.errors.MigrationAborted` if a hop's lineage dies for
    good (which the chain invariants say must never happen for the
    crash points this harness injects).
    """
    retry = retry or FAULT_TOLERANT_RETRY
    report = ChainReport()
    current = app
    for hop in range(1, hops + 1):
        view = hop_view(tb, hop)
        plan = plans(hop) if callable(plans) else (plans or {}).get(hop)
        current, hop_report = _drive_hop(
            view, current, hop, plan, retry, max_redrives_per_hop
        )
        report.hops.append(hop_report)
    return report


def _drive_hop(
    view: Testbed,
    app: HostApplication,
    hop: int,
    plan,
    retry: RetryPolicy,
    max_redrives: int,
) -> tuple[HostApplication, HopReport]:
    """One hop, driven to completion through crashes and recoveries."""
    from repro.durability.recovery import MigrationRecovery

    crashes = 0
    redrives = 0
    # Run scopes close into telemetry.run_metrics keyed by trace id; the
    # keys that appear while this hop runs are this hop's runs.
    runs_before = set(view.telemetry.run_metrics)

    def hop_runs() -> tuple[list[str], dict[str, dict]]:
        fresh = [k for k in view.telemetry.run_metrics if k not in runs_before]
        return fresh, {k: view.telemetry.run_metrics[k] for k in fresh}

    while True:
        faults = FaultInjector(plan) if plan is not None else None
        orch = MigrationOrchestrator(view, retry=retry, faults=faults)
        try:
            result = orch.migrate_enclave(app)
            # In-protocol healing (retried attempts, crashed-but-spent
            # sources) never surfaces as an exception; fold it in so the
            # soak can assert its injected faults actually fired.
            crashes += orch.stats.retries + orch.stats.crashes_seen
            run_ids, run_metrics = hop_runs()
            return result.target_app, HopReport(
                hop=hop,
                source_name=view.source.name,
                target_name=view.target.name,
                app=result.target_app,
                outcome="migrated",
                crashes_healed=crashes,
                redrives=redrives,
                run_ids=run_ids,
                run_metrics=run_metrics,
            )
        except (PartyCrash, MachineCrash, MigrationAborted) as exc:
            crashes += 1
            if (
                isinstance(exc, MigrationAborted)
                and app.library.enclave_id is not None
            ):
                # Clean abort with the source still serving: the
                # orchestrator already rolled the protocol back; just
                # re-drive without the (already fired) fault plan.
                outcome = "resumed-source"
            else:
                recovery = MigrationRecovery(view, app, orchestrator=orch)
                rec = recovery.recover()
                if rec.finalized:
                    run_ids, run_metrics = hop_runs()
                    return rec.target_app, HopReport(
                        hop=hop,
                        source_name=view.source.name,
                        target_name=view.target.name,
                        app=rec.target_app,
                        outcome=f"recovered:{rec.outcome}",
                        crashes_healed=crashes,
                        redrives=redrives,
                        run_ids=run_ids,
                        run_metrics=run_metrics,
                    )
                if rec.outcome == "source-restored":
                    app = rec.target_app  # the rebuilt source instance
                elif rec.outcome != "resumed-source":
                    raise MigrationAborted(
                        f"chain hop {hop}: lineage lost ({rec.outcome})",
                        cause=exc,
                    ) from exc
                outcome = rec.outcome
            redrives += 1
            if redrives > max_redrives:
                raise MigrationAborted(
                    f"chain hop {hop}: gave up after {redrives} re-drives "
                    f"(last recovery outcome: {outcome})",
                    cause=exc,
                ) from exc
            plan = None  # the fault fired; the re-drive runs clean
