"""Whole-VM live migration with enclaves (§VI-D, Figures 10(b)-(d)).

Splices the enclave path into QEMU pre-copy exactly as Figure 8 shows:

①-② the monitor tells the hypervisor, which upcalls the guest OS;
③-⑤ the guest signals each enclave process; control threads two-phase
     checkpoint; the SGX library reports each enclave ready;
⑥-⑦ the guest hypercalls ready and pre-copy proceeds, carrying the
     sealed checkpoints inside ordinary RAM.

On the target the guest OS rebuilds every enclave from the driver's
records; each control thread then authenticates (channel or agent path),
receives K_migrate, restores, replays CSSA and verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypervisor.qemu import MigrationReport
from repro.migration.agent import AgentService
from repro.migration.orchestrator import EnclaveMigrationResult, MigrationOrchestrator
from repro.migration.testbed import Testbed
from repro.sdk.host import HostApplication
from repro.sim.clock import NS_PER_MS


@dataclass
class VmMigrationResult:
    """Everything Figures 10(b)-(d) read off one VM migration."""

    report: MigrationReport
    enclave_results: list[EnclaveMigrationResult]
    n_enclaves: int

    @property
    def total_ms(self) -> float:
        return self.report.total_ms

    @property
    def downtime_ms(self) -> float:
        return self.report.downtime_ms

    @property
    def transferred_mb(self) -> float:
        return self.report.transferred_mb

    @property
    def restore_ms(self) -> float:
        return self.report.restore_ns / NS_PER_MS

    @property
    def prep_ms(self) -> float:
        return self.report.prep_ns / NS_PER_MS


class VmMigrationManager:
    """Migrates a whole VM, enclaves included."""

    def __init__(self, testbed: Testbed, apps: list[HostApplication]) -> None:
        self.tb = testbed
        self.apps = apps
        self.orchestrator = MigrationOrchestrator(testbed)

    def migrate(self, agent: AgentService | None = None, **qemu_kwargs) -> VmMigrationResult:
        """Run the full live migration of the source VM."""
        tb = self.tb
        enclave_results: list[EnclaveMigrationResult] = []

        def prepare() -> int:
            # Steps ①-⑥: the guest OS quiesces and checkpoints everything.
            notify_start = tb.clock.now_ns
            tb.source.hypervisor.upcall_migration_notify(tb.source_vm)
            checkpoint_window_ns = tb.clock.now_ns - notify_start
            if agent is not None:
                # §VI-D: escrow every K_migrate ahead of the cut-over so
                # no remote attestation sits on the resume path.  This
                # overlaps the (long) pre-copy phase, so only the
                # checkpointing window counts toward the downtime.
                for app in self.apps:
                    agent.escrow_from(app)
            return checkpoint_window_ns

        def restore() -> None:
            orch = self.orchestrator
            for app in self.apps:
                bytes_before = tb.network.bytes_transferred
                target_app = orch.build_virgin_target(app)
                checkpoint_bytes = app.library.last_checkpoint.envelope.to_bytes()
                if agent is not None:
                    agent.release_to(target_app)
                else:
                    orch.establish_channel(app, target_app)
                    orch.handoff_key(app, target_app)
                plan = orch.restore(target_app, checkpoint_bytes)
                target_app.respawn_after_restore(plan)
                enclave_results.append(
                    EnclaveMigrationResult(
                        target_app=target_app,
                        replay_plan=plan,
                        checkpoint_bytes=app.library.last_checkpoint.envelope.size,
                        transferred_bytes=tb.network.bytes_transferred - bytes_before,
                    )
                )
            tb.target_os.end_migration()

        report = tb.source.qemu.migrate(
            tb.source_vm,
            prepare_hook=prepare if self.apps else None,
            restore_hook=restore if self.apps else None,
            **qemu_kwargs,
        )
        return VmMigrationResult(
            report=report,
            enclave_results=enclave_results,
            n_enclaves=len(self.apps),
        )


def migrate_plain_vm(testbed: Testbed, **qemu_kwargs) -> MigrationReport:
    """Baseline: migrate the source VM with no enclave involvement."""
    return testbed.source.qemu.migrate(testbed.source_vm, **qemu_kwargs)
