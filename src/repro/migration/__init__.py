"""The paper's core contribution: secure enclave (and VM) live migration.

* :mod:`repro.migration.checkpoint` — the checkpoint format (§IV): dumped
  memory pages, per-thread CSSA/flag state, hash-then-encrypt sealing.
* :mod:`repro.migration.orchestrator` — source/target migration managers
  implementing §III's three operations and §V's defenses.
* :mod:`repro.migration.agent` — the agent-enclave attestation-latency
  optimization (§VI-D).
* :mod:`repro.migration.snapshot` — legal checkpoint/resume with the
  owner-held key and audit log (§V-C).
* :mod:`repro.migration.vm` — whole-VM migration: enclave preparation
  spliced into QEMU pre-copy (§VI-D, Figures 10(b)-(d)).
* :mod:`repro.migration.testbed` — two-machine scenario builder used by
  tests, examples and benchmarks.
"""

from repro.migration.checkpoint import EnclaveCheckpoint, open_checkpoint, seal_checkpoint
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import Testbed, build_testbed

__all__ = [
    "EnclaveCheckpoint",
    "MigrationOrchestrator",
    "Testbed",
    "build_testbed",
    "open_checkpoint",
    "seal_checkpoint",
]
