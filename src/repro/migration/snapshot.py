"""Legal checkpoint/resume with owner involvement (§V-C).

"The only difference is that for encrypting the checkpoint, the control
thread will retrieve an encryption key (K_encrypt) from the enclave owner
instead of generating a random one ... Thus, all the checkpoint/resume
operations are logged.  By auditing the log, an owner can check
suspicious rollbacks."

Technically identical to a migration checkpoint; the trust difference is
that the key round-trips through the owner, putting a human-auditable
record in front of every resume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.authenc import Envelope
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import Testbed
from repro.sdk import control
from repro.sdk.host import HostApplication
from repro.sdk.owner import EnclaveOwner
from repro.telemetry.spans import maybe_span


@dataclass
class Snapshot:
    """An owner-keyed enclave snapshot on (simulated) disk."""

    image_name: str
    sequence: int
    envelope: Envelope

    @property
    def size(self) -> int:
        return self.envelope.size


class SnapshotManager:
    """Drives §V-C checkpoint/resume through the owner."""

    def __init__(self, testbed: Testbed, owner: EnclaveOwner) -> None:
        self.tb = testbed
        self.owner = owner
        self.orchestrator = MigrationOrchestrator(testbed)

    def snapshot(self, app: HostApplication, reason: str) -> Snapshot:
        """Take an owner-keyed snapshot of a running enclave app."""
        with maybe_span(
            self.tb.trace,
            "snapshot.take",
            party="source",
            image=app.image.name,
            reason=reason,
        ):
            library = app.library
            quote, dh_public = library.control_call(
                control.owner_key_request, app.machine.quoting_enclave, "snapshot"
            )
            owner_public, sealed = self.owner.grant_snapshot_key(
                app.image.name, quote, dh_public, reason
            )
            library.control_call(
                control.owner_key_install, owner_public, sealed, "snapshot"
            )

            library.checkpoint_use_installed_key = True
            library.last_checkpoint = None
            try:
                self.orchestrator.checkpoint_enclave(app)
            finally:
                library.checkpoint_use_installed_key = False
            result = library.last_checkpoint
            self.owner.record_snapshot(app.image.name, result.sequence)
            # The invariant monitor watches this: snapshot sequences per
            # image must be strictly increasing, or a rolled-back lineage
            # is quietly generating checkpoints.
            self.tb.trace.emit(
                "snapshot", "take", image=app.image.name, sequence=result.sequence
            )
            # A snapshot is not a migration: the enclave resumes right away.
            library.control_call(control.source_cancel_migration)
            library.last_checkpoint = None
            return Snapshot(app.image.name, result.sequence, result.envelope)

    def resume(
        self,
        snapshot: Snapshot,
        app_template: HostApplication,
        reason: str,
        on_target: bool = True,
    ) -> HostApplication:
        """Resume a snapshot into a fresh, owner-attested enclave."""
        tb = self.tb
        machine = tb.target if on_target else tb.source
        guest_os = tb.target_os if on_target else tb.source_os
        with maybe_span(
            tb.trace,
            "snapshot.resume",
            party="target" if on_target else "source",
            image=snapshot.image_name,
            sequence=snapshot.sequence,
            reason=reason,
        ):
            fresh = HostApplication(
                machine,
                guest_os,
                app_template.image,
                app_template.workers,
                owner=None,
                name=f"{snapshot.image_name}-resumed",
            )
            fresh.library.launch(owner=None)
            quote, dh_public = fresh.library.control_call(
                control.owner_key_request, machine.quoting_enclave, "resume"
            )
            owner_public, sealed = self.owner.grant_resume_key(
                snapshot.image_name, quote, dh_public, reason
            )
            fresh.library.control_call(
                control.owner_key_install, owner_public, sealed, "resume"
            )

            checkpoint_bytes = snapshot.envelope.to_bytes()
            plan = self.orchestrator.restore(fresh, checkpoint_bytes)
            fresh.respawn_after_restore(plan)
            guest_os.end_migration()
            tb.trace.emit(
                "snapshot",
                "resume",
                image=snapshot.image_name,
                sequence=snapshot.sequence,
            )
            return fresh
