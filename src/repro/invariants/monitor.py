"""Live runtime monitor for the paper's global safety invariants.

The attack tests check these properties at the *end* of a scenario; the
monitor checks them *while the simulation runs*, in every test, whether
or not the test thought to ask:

* **single-instance** — at most one live enclave instance per migration
  lineage (P-5: migration must never fork a measurement);
* **no execution after self-destroy** — an instance observed SPENT never
  completes another ecall and never becomes non-SPENT again;
* **escrow exactly-once** — the §VI-D agent releases each escrowed key
  at most once;
* **escrow-table bound** — under churn the agent's escrow table never
  holds more entries than distinct measurements ever escrowed (a larger
  table means entries are leaking instead of being overwritten);
* **snapshot sequence monotonicity** — §V-C snapshot *takes* per image
  carry strictly increasing sequence numbers; a non-monotone take means
  a rolled-back lineage is quietly generating checkpoints;
* **CSSA is hardware-only** — the tracked CSSA value is never readable
  by software (the restore path must work without ever reading it).

The monitor attaches to both guest engines (a periodic hook on the
round-robin scheduler) and to the event trace (an observer for agent
release events).  A violation is recorded *and* raised eagerly as
:class:`~repro.errors.InvariantViolation`; recording matters because a
retry loop may swallow the raise — the autouse test fixture re-checks
the recorded list at teardown, so a swallowed violation still fails the
test that caused it.

Only :meth:`MigrationOrchestrator.migrate_enclave` registers lineages:
the §V-C snapshot/suspend flows intentionally produce a second instance
of the same measurement (a *legal* fork, gated by audit) and must not
trip the single-instance rule.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.errors import (
    InvariantViolation,
    ReproError,
    SgxAccessFault,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.migration.testbed import Testbed
    from repro.sdk.host import HostApplication
    from repro.sdk.library import SgxLibrary

_CHANNEL_SPENT = 2  # mirrors repro.sdk.control.CHANNEL_SPENT

#: Monitors constructed since the last reset; the autouse test fixture
#: asserts every one of them is clean at teardown.
_ACTIVE: list["InvariantMonitor"] = []


def active_monitors() -> list["InvariantMonitor"]:
    return list(_ACTIVE)


def reset_active() -> None:
    _ACTIVE.clear()


class InvariantMonitor:
    """Continuously asserts migration safety invariants on one testbed."""

    def __init__(self, testbed: "Testbed", check_interval: int = 32) -> None:
        self.tb = testbed
        #: Engine rounds between full sweeps; per-round checks would
        #: quadruple sim time for no extra coverage (state transitions
        #: of interest span many rounds).
        self.check_interval = check_interval
        self.enabled = True
        self.violations: list[str] = []
        #: SLO burn-rate violations observed on the trace.  These are a
        #: *soft* ledger: an SLO breach is an operational incident, not a
        #: safety-property failure, so it is recorded here (and visible
        #: to the CLI and the fleet console) without tripping
        #: :meth:`assert_clean` — tests intentionally fire alerts.
        self.slo_violations: list[str] = []
        self._tick = 0
        self._lineages: dict[int, list["HostApplication"]] = {}
        self._app_lineage: dict[int, int] = {}  # id(app) -> lineage
        self._next_lineage = 1
        #: (machine name, enclave id) pairs ever observed SPENT.
        self._spent: set[tuple[str, int]] = set()
        self._escrow_releases: dict[str, int] = {}
        #: Distinct measurements ever escrowed: the table-size bound.
        self._escrow_keys: set[str] = set()
        #: Highest §V-C snapshot sequence taken, per image name.
        self._snapshot_taken: dict[str, int] = {}
        self._cssa_probed: set[tuple[str, int]] = set()
        _ACTIVE.append(self)

    # ---------------------------------------------------------------- wiring
    def attach(self) -> None:
        """Hook into both guest engines and the event trace."""
        for guest_os in (self.tb.source_os, self.tb.target_os):
            guest_os.engine.round_hooks.append(self._on_round)
        self.tb.trace.add_observer(self._on_event)
        self.tb.source.monitor = self
        self.tb.target.monitor = self

    # -------------------------------------------------------------- lineages
    def register_lineage(self, app: "HostApplication") -> int:
        """Start (or return) the migration lineage rooted at ``app``."""
        existing = self._app_lineage.get(id(app))
        if existing is not None:
            return existing
        lineage = self._next_lineage
        self._next_lineage += 1
        self._lineages[lineage] = [app]
        self._app_lineage[id(app)] = lineage
        return lineage

    def join_lineage(self, lineage: int, app: "HostApplication") -> None:
        """Add a successor instance (migrated or recovered) to a lineage."""
        if lineage not in self._lineages:
            raise InvariantViolation(f"unknown lineage {lineage}")
        if self._app_lineage.get(id(app)) == lineage:
            return
        self._lineages[lineage].append(app)
        self._app_lineage[id(app)] = lineage

    def lineage_of(self, app: "HostApplication") -> int | None:
        return self._app_lineage.get(id(app))

    def lineage_live_count(self, app: "HostApplication") -> int:
        """How many instances of ``app``'s lineage are currently live."""
        lineage = self._app_lineage.get(id(app))
        if lineage is None:
            return 0
        return self._count_live(self._lineages[lineage])

    # ----------------------------------------------------------------- hooks
    def _on_round(self) -> None:
        if not self.enabled or not self._lineages:
            return
        self._tick += 1
        if self._tick % self.check_interval == 0:
            self.check_now()

    def _on_event(self, event) -> None:
        if not self.enabled:
            return
        if event.category == "slo" and event.name == "violation":
            self.slo_violations.append(
                str(event.payload.get("message") or event.payload)
            )
            return
        if event.category == "agent" and event.name == "release":
            key_id = str(event.payload.get("key_id"))
            count = self._escrow_releases.get(key_id, 0) + 1
            self._escrow_releases[key_id] = count
            if count > 1:
                self._violate(
                    f"escrowed key {key_id[:12]}… released {count} times "
                    "(must be exactly once)"
                )
        elif event.category == "agent" and event.name == "escrow":
            self._escrow_keys.add(str(event.payload.get("key_id")))
            table_size = int(event.payload.get("table_size", 0))
            if table_size > len(self._escrow_keys):
                self._violate(
                    f"agent escrow table holds {table_size} entries but only "
                    f"{len(self._escrow_keys)} distinct measurements were "
                    "ever escrowed (entries are leaking under churn)"
                )
        elif event.category == "snapshot" and event.name == "take":
            image = str(event.payload.get("image"))
            sequence = int(event.payload.get("sequence", 0))
            last = self._snapshot_taken.get(image, 0)
            if sequence <= last:
                self._violate(
                    f"§V-C snapshot sequence went backwards for {image!r} "
                    f"({last} → {sequence}): a rolled-back lineage is "
                    "generating checkpoints"
                )
            self._snapshot_taken[image] = max(last, sequence)

    def on_ecall_result(self, library: "SgxLibrary") -> None:
        """Called by the SDK whenever a worker ecall produces a result."""
        if not self.enabled or library.enclave_id is None:
            return
        key = (library.machine.name, library.enclave_id)
        if key in self._spent:
            self._violate(
                f"enclave {key} completed an ecall after self-destroy "
                "(execution after SPENT)"
            )

    # ---------------------------------------------------------------- checks
    def check_now(self) -> None:
        """Run a full invariant sweep; raises on the first violation."""
        if not self.enabled:
            return
        self.tb.trace.metrics.counter("invariants.checks_total").inc()
        for lineage, apps in self._lineages.items():
            live = self._count_live(apps, lineage=lineage)
            if live > 1:
                self._violate(
                    f"lineage {lineage}: {live} live instances of the same "
                    "measurement (migration forked the enclave)"
                )
            for app in apps:
                self._probe_cssa(app)
        # Telemetry run-scope isolation: concurrent migrations must not
        # bleed metric deltas into each other's per-run accounting.
        telemetry = getattr(self.tb, "telemetry", None)
        if telemetry is not None:
            for message in telemetry.run_isolation_violations():
                self._violate(message)

    def assert_clean(self) -> None:
        """Final verdict: re-sweep, then fail on anything ever recorded."""
        if not self.enabled:
            return
        self.check_now()
        if self.violations:
            raise InvariantViolation(
                "invariant violations recorded during the run: "
                + "; ".join(self.violations)
            )

    def acknowledge(self) -> None:
        """Clear recorded violations and stand down (sentinel tests only)."""
        self.violations.clear()
        self.enabled = False

    # --------------------------------------------------------------- helpers
    def _count_live(self, apps, lineage: int | None = None) -> int:
        live = 0
        for app in apps:
            state = self._enclave_state(app)
            if state is None:
                continue
            channel_state, global_flag = state
            key = (app.machine.name, app.library.enclave_id)
            if channel_state == _CHANNEL_SPENT:
                self._spent.add(key)
                continue
            if key in self._spent:
                self._violate(
                    f"enclave {key} was SPENT and is now {channel_state}: a "
                    "self-destroyed instance came back to life"
                )
            if global_flag == 0:
                live += 1
        return live

    def _enclave_state(self, app) -> tuple[int, int] | None:
        """(channel_state, global_flag) via hardware reads; None if gone."""
        library = app.library
        if library.enclave_id is None:
            return None
        layout = library.image.layout
        try:
            hw = library.driver.hw(library.enclave_id)
            state = struct.unpack(
                "<Q", hw.hw_read(layout.channel_state_vaddr(), 8)
            )[0]
            flag = struct.unpack(
                "<Q", hw.hw_read(layout.global_flag_vaddr(), 8)
            )[0]
        except ReproError:
            # Destroyed mid-check or the page is evicted: either way the
            # instance is not provably live right now — never guess.
            return None
        return state, flag

    def _probe_cssa(self, app) -> None:
        """Assert the tracked CSSA is not software-readable (checked once
        per enclave instance — the property is structural, not dynamic)."""
        library = app.library
        if library.enclave_id is None:
            return
        key = (library.machine.name, library.enclave_id)
        if key in self._cssa_probed:
            return
        try:
            hw = library.driver.hw(library.enclave_id)
        except ReproError:
            return
        self._cssa_probed.add(key)
        for tcs in hw._tcs.values():
            try:
                tcs.cssa
            except SgxAccessFault:
                return
            self._violate(
                f"enclave {key}: TCS.CSSA was readable by software — the "
                "restore path must never depend on reading it"
            )
            return

    def _violate(self, message: str) -> None:
        self.violations.append(message)
        self.tb.trace.metrics.counter("invariants.violations_total").inc()
        # The violation event carries the span that was active when the
        # property broke — the flight recorder's dump (triggered by this
        # event) then pins the failure to a protocol step, not just a time.
        tracer = getattr(self.tb.trace, "tracer", None)
        active = tracer.active() if tracer is not None else None
        self.tb.trace.emit(
            "invariant",
            "violation",
            message=message,
            during=active.name if active is not None else None,
        )
        raise InvariantViolation(message)
