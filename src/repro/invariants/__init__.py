"""Runtime invariant monitoring (single instance, SPENT-stays-SPENT,
escrow exactly-once, hardware-only CSSA)."""

from repro.invariants.monitor import InvariantMonitor, active_monitors, reset_active

__all__ = ["InvariantMonitor", "active_monitors", "reset_active"]
