"""Simulated Intel SGX (v1) hardware.

This package is the substitute for the Skylake SGX part the paper ran on.
It models the pieces of SGX the migration protocol interacts with, with
the same access-control semantics:

* :mod:`repro.sgx.structures`   — SECS, TCS (hardware-only CSSA), SSA,
  page types/permissions, SIGSTRUCT, REPORT, QUOTE.
* :mod:`repro.sgx.epc`          — the Enclave Page Cache and EPCM.
* :mod:`repro.sgx.mee`          — memory encryption engine: pages evicted
  with EWB are sealed under a key that never leaves the CPU.
* :mod:`repro.sgx.measurement`  — MRENCLAVE digest computation.
* :mod:`repro.sgx.cpu`          — the CPU package: per-CPU key material,
  enclave bookkeeping, enclave-mode sessions.
* :mod:`repro.sgx.instructions` — the SGX v1 instruction set.
* :mod:`repro.sgx.enclave`      — hardware-side enclave state.
* :mod:`repro.sgx.attestation`  — local attestation, quoting enclave,
  attestation service (IAS stand-in), enclave owners.
* :mod:`repro.sgx.proposed`     — the paper's §VII-B proposed extensions
  (EPUTKEY / EMIGRATE / ESWPOUT / ... ) for transparent migration.
"""

from repro.sgx.cpu import EnclaveSession, SgxCpu
from repro.sgx.enclave import EnclaveHw
from repro.sgx.epc import Epc, EpcPage
from repro.sgx.structures import (
    PAGE_SIZE,
    PageType,
    Permissions,
    Quote,
    Report,
    SecInfo,
    Secs,
    SigStruct,
    Tcs,
)

__all__ = [
    "Epc",
    "EpcPage",
    "EnclaveHw",
    "EnclaveSession",
    "PAGE_SIZE",
    "PageType",
    "Permissions",
    "Quote",
    "Report",
    "SecInfo",
    "Secs",
    "SgxCpu",
    "SigStruct",
    "Tcs",
]
