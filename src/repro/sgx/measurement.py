"""MRENCLAVE computation.

"During enclave construction, the processor computes a digest of the
enclave which represents the whole enclave layout and memory contents"
(§II-A).  The digest is a running SHA-256 over a log of ECREATE / EADD /
EEXTEND records, so two enclaves built from the same image on different
machines measure identically — which is what lets the source control
thread attest a *virgin* target enclave built from the same image.
"""

from __future__ import annotations

import hashlib

from repro.errors import SgxInstructionFault
from repro.sgx.structures import PAGE_SIZE, SecInfo

_EXTEND_CHUNK = 256


class MeasurementLog:
    """Running enclave measurement, updated by build-time instructions."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._finalized: bytes | None = None

    def _update(self, tag: bytes, payload: bytes) -> None:
        if self._finalized is not None:
            raise SgxInstructionFault("enclave measurement already finalized by EINIT")
        self._hash.update(len(tag).to_bytes(1, "big") + tag + payload)

    def ecreate(self, base: int, size: int) -> None:
        self._update(b"ECREATE", base.to_bytes(8, "little") + size.to_bytes(8, "little"))

    def eadd(self, vaddr: int, sec_info: SecInfo) -> None:
        self._update(b"EADD", vaddr.to_bytes(8, "little") + sec_info.to_bytes())

    def eextend(self, vaddr: int, page_content: bytes) -> None:
        """Measure one page's content in 256-byte chunks, as hardware does."""
        if len(page_content) != PAGE_SIZE:
            raise SgxInstructionFault("EEXTEND measures whole pages")
        for offset in range(0, PAGE_SIZE, _EXTEND_CHUNK):
            chunk = page_content[offset : offset + _EXTEND_CHUNK]
            self._update(b"EEXTEND", vaddr.to_bytes(8, "little") + offset.to_bytes(4, "little") + chunk)

    def finalize(self) -> bytes:
        """Freeze and return MRENCLAVE (called by EINIT)."""
        if self._finalized is None:
            self._finalized = self._hash.digest()
        return self._finalized

    @property
    def value(self) -> bytes:
        """The digest so far (finalized value once EINIT has run)."""
        if self._finalized is not None:
            return self._finalized
        return self._hash.digest()
