"""The SGX-capable CPU package and the enclave-mode capability.

:class:`SgxCpu` owns the key material that never leaves a processor
(page-encryption key, report-key root, seal-key root), the EPC, and the
table of live enclaves.  :class:`EnclaveSession` is the *only* way any
code in this repository reads or writes enclave memory: it is created by
EENTER/ERESUME, dies at EEXIT/AEX, and enforces page permissions — the
software embodiment of "accesses to the enclave memory area from any
software not resident in the enclave are forbidden" (§II-A).
"""

from __future__ import annotations

import itertools
import struct
from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.crypto.hashes import hmac_sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import SgxAccessFault, SgxInstructionFault
from repro.sgx.enclave import EnclaveHw
from repro.sgx.epc import Epc
from repro.sgx.mee import MemoryEncryptionEngine
from repro.sgx.structures import Permissions, Tcs
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace

if TYPE_CHECKING:  # pragma: no cover
    pass


class SgxCpu:
    """One physical CPU package with SGX."""

    _ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        costs: CostModel,
        trace: EventTrace,
        rng: DeterministicRng,
        epc_pages: int = 4096,
    ) -> None:
        self.name = name
        self.clock = clock
        self.costs = costs
        self.trace = trace
        self.rng = rng
        self.cpu_id = struct.pack(">I", next(self._ids)) + rng.bytes(12)
        self.platform_id = rng.bytes(16)
        self.epc = Epc(epc_pages)
        # Root key material fused into the package at "manufacturing".
        self._root_key = SymmetricKey.random(rng, f"{name}/root")
        self._page_encryption_key = self._root_key.derive("page-encryption")
        self._report_root = self._root_key.derive("report-root")
        self._seal_root = self._root_key.derive("seal-root")
        self.mee = MemoryEncryptionEngine(self._page_encryption_key)
        self.enclaves: dict[int, EnclaveHw] = {}
        self._next_eid = itertools.count(1)
        self._version_counter = itertools.count(1)
        self.aex_count = 0
        self._charge_collector: list[int] | None = None

    # ------------------------------------------------------------ bookkeeping
    def new_eid(self) -> int:
        return next(self._next_eid)

    def next_version(self) -> int:
        return next(self._version_counter)

    def enclave(self, eid: int) -> EnclaveHw:
        enclave = self.enclaves.get(eid)
        if enclave is None:
            raise SgxInstructionFault(f"no enclave with eid {eid} on {self.name}")
        return enclave

    # ------------------------------------------------------------ key derivation
    # These are hardware-internal: only instructions (EGETKEY / EREPORT)
    # and the MEE reach them, always scoped to an identity.
    def _report_key_for(self, mrenclave: bytes) -> bytes:
        return hmac_sha256(self._report_root.material, b"report" + mrenclave)

    def _seal_key_for(self, identity: bytes) -> bytes:
        return hmac_sha256(self._seal_root.material, b"seal" + identity)

    def charge(self, cost_ns: int) -> None:
        """Charge modelled time for an instruction on this CPU.

        Inside a :meth:`collect_charges` block the cost is accumulated for
        the enclosing scheduler thread to yield (so concurrent threads'
        instruction time overlaps correctly) instead of advancing the
        global clock serially.
        """
        if self._charge_collector is not None:
            self._charge_collector[0] += cost_ns
        else:
            self.clock.advance(cost_ns)

    def meter(self, op: str, cost_ns: int, eid: int | None = None) -> None:
        """Charge one dispatched leaf instruction *and* meter it.

        The migration hot path is dominated by EWB/ELDU/ECREATE traffic;
        counting and timing them per CPU (and, where it matters, per
        enclave) is what lets the dump/restore benchmarks attribute cost
        without replaying the event stream.
        """
        self.charge(cost_ns)
        metrics = self.trace.metrics
        metrics.counter("sgx.instructions_total", op=op, cpu=self.name).inc()
        metrics.histogram("sgx.instruction_ns", op=op, cpu=self.name).observe(cost_ns)
        if eid is not None:
            metrics.counter("sgx.enclave_ops_total", op=op, cpu=self.name, eid=eid).inc()

    @contextmanager
    def collect_charges(self):
        """Accumulate instruction charges instead of advancing the clock.

        Yields a one-element list whose single entry is the total ns
        charged inside the block.
        """
        saved = self._charge_collector
        box = [0]
        self._charge_collector = box
        try:
            yield box
        finally:
            self._charge_collector = saved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SgxCpu {self.name} enclaves={len(self.enclaves)}>"


class EnclaveSession:
    """A logical processor executing inside an enclave.

    Created by EENTER (``entered_via='eenter'``, with ``rax`` carrying the
    CSSA value as the instruction's return value — the hook §IV-C's
    tracking builds on) or by ERESUME.  All reads and writes check the
    EPCM permissions of the touched pages; a closed session (after EEXIT
    or AEX) faults on any use.
    """

    def __init__(
        self,
        cpu: SgxCpu,
        enclave: EnclaveHw,
        tcs: Tcs,
        aep: object,
        rax: int,
        entered_via: str,
    ) -> None:
        self.cpu = cpu
        self.enclave = enclave
        self.tcs = tcs
        self.aep = aep
        self.rax = rax
        self.entered_via = entered_via
        self._open = True

    # ------------------------------------------------------------- state
    @property
    def open(self) -> bool:
        return self._open

    def _close(self) -> None:
        self._open = False

    def _require_open(self) -> None:
        if not self._open:
            raise SgxAccessFault("enclave session is closed (after EEXIT/AEX)")

    # ------------------------------------------------------------- memory
    def _check_pages(self, vaddr: int, n: int, needed: Permissions) -> None:
        from repro.sgx.structures import PAGE_SIZE  # local to avoid cycle noise

        first = vaddr - (vaddr % PAGE_SIZE)
        last = (vaddr + max(n, 1) - 1) - ((vaddr + max(n, 1) - 1) % PAGE_SIZE)
        for page in range(first, last + 1, PAGE_SIZE):
            perms = self.enclave.page_permissions(page)
            if needed not in perms:
                raise SgxAccessFault(
                    f"page 0x{page:x} lacks {needed} permission (has {perms})"
                )

    def read(self, vaddr: int, n: int) -> bytes:
        """Read enclave memory (requires R permission on touched pages)."""
        self._require_open()
        if not self.enclave.contains(vaddr):
            raise SgxAccessFault(f"0x{vaddr:x} is outside the enclave range")
        self._check_pages(vaddr, n, Permissions.R)
        return self.enclave.hw_read(vaddr, n)

    def write(self, vaddr: int, data: bytes) -> None:
        """Write enclave memory (requires W permission on touched pages)."""
        self._require_open()
        if not self.enclave.contains(vaddr):
            raise SgxAccessFault(f"0x{vaddr:x} is outside the enclave range")
        self._check_pages(vaddr, len(data), Permissions.W)
        self.enclave.hw_write(vaddr, data)

    def read_u64(self, vaddr: int) -> int:
        return struct.unpack("<Q", self.read(vaddr, 8))[0]

    def write_u64(self, vaddr: int, value: int) -> None:
        self.write(vaddr, struct.pack("<Q", value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self._open else "closed"
        return f"<EnclaveSession eid={self.enclave.eid} tcs=0x{self.tcs.vaddr:x} {state}>"
