"""SGX v2 dynamic memory management (EDMM).

§IV-B's limitation — "If having executable, writable and non-readable
permission, one EPC page cannot be migrated because the control thread
cannot read its content ... this problem can be fixed in SGX v2 which
supports dynamically changing page permissions" — is about these
instructions:

* **EAUG**    — the OS adds a pending page to a *running* enclave;
* **EACCEPT** — the enclave accepts a pending page or permission change
  (nothing the OS does takes effect until the enclave agrees);
* **EMODPR**  — the OS restricts a page's permissions (needs EACCEPT);
* **EMODPE**  — the *enclave* extends its own page's permissions.

With EMODPE, the control thread can temporarily make a W+X page readable,
dump it, and drop the permission again — which is exactly how the v2
migration test closes the paper's v1 gap
(`tests/sgx/test_sgx2.py::TestV2ClosesTheMigrationGap`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SgxAccessFault, SgxInstructionFault
from repro.sgx.cpu import EnclaveSession, SgxCpu
from repro.sgx.enclave import EnclaveHw
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions


@dataclass
class _PendingState:
    """Per-enclave EDMM bookkeeping (hardware-held)."""

    #: vaddr -> "aug" (new page awaiting EACCEPT)
    pending_pages: dict[int, str] = field(default_factory=dict)
    #: vaddr -> restricted permissions awaiting EACCEPT
    pending_restrict: dict[int, Permissions] = field(default_factory=dict)


def _edmm(enclave: EnclaveHw) -> _PendingState:
    state = getattr(enclave, "_edmm_state", None)
    if state is None:
        state = _PendingState()
        enclave._edmm_state = state
    return state


def eaug(cpu: SgxCpu, enclave: EnclaveHw, vaddr: int) -> None:
    """OS side: add a pending zero page to an initialized enclave.

    In v1, EADD after EINIT faults; EAUG is the v2 escape hatch.  The
    page is unusable until the enclave EACCEPTs it — the enclave's
    defense against the OS growing it with unexpected memory.
    """
    cpu.charge(cpu.costs.eadd_page_ns)
    if not enclave.secs.initialized:
        raise SgxInstructionFault("EAUG only applies to initialized enclaves")
    if not enclave.contains(vaddr):
        raise SgxInstructionFault(f"0x{vaddr:x} is outside the enclave range")
    page = cpu.epc.alloc(enclave.eid, vaddr, PageType.REG, Permissions.NONE)
    enclave._map_page(vaddr, page.index)
    _edmm(enclave).pending_pages[vaddr] = "aug"


def eaccept(session: EnclaveSession, vaddr: int) -> None:
    """Enclave side: accept a pending page or permission restriction."""
    cpu = session.cpu
    cpu.charge(cpu.costs.eextend_page_ns)
    session._require_open()
    enclave = session.enclave
    state = _edmm(enclave)
    if vaddr in state.pending_pages:
        del state.pending_pages[vaddr]
        index = enclave._page_index(vaddr)
        cpu.epc.entry(index).permissions = Permissions.RW
        return
    if vaddr in state.pending_restrict:
        index = enclave._page_index(vaddr)
        cpu.epc.entry(index).permissions = state.pending_restrict.pop(vaddr)
        return
    raise SgxInstructionFault(f"nothing pending at 0x{vaddr:x}")


def emodpr(cpu: SgxCpu, enclave: EnclaveHw, vaddr: int, permissions: Permissions) -> None:
    """OS side: restrict a page's permissions (effective after EACCEPT)."""
    cpu.charge(cpu.costs.eextend_page_ns)
    index = enclave._page_index(vaddr)
    current = cpu.epc.entry(index).permissions
    if permissions | current != current:
        raise SgxInstructionFault("EMODPR can only restrict, never extend")
    _edmm(enclave).pending_restrict[vaddr] = permissions


def emodpe(session: EnclaveSession, vaddr: int, permissions: Permissions) -> None:
    """Enclave side: extend one of its own pages' permissions.

    Takes effect immediately — only the enclave itself can do this, so
    there is nothing to double-confirm.  This is the instruction that
    lets the control thread read a W+X page during checkpointing.
    """
    cpu = session.cpu
    cpu.charge(cpu.costs.eextend_page_ns)
    session._require_open()
    if session.enclave.page_type(vaddr) is not PageType.REG:
        raise SgxInstructionFault("EMODPE only applies to REG pages")
    index = session.enclave._page_index(vaddr)
    entry = cpu.epc.entry(index)
    entry.permissions = entry.permissions | permissions


def accept_pending_page(session: EnclaveSession, vaddr: int) -> None:
    """Convenience: runtime-side EACCEPT for a freshly EAUG'd page."""
    eaccept(session, vaddr)


def dump_unreadable_page_v2(session: EnclaveSession, vaddr: int) -> bytes:
    """The §IV-B fix, as the v2 control thread would perform it.

    Temporarily extend a non-readable page with R, copy it, restore the
    original permissions via the OS-restrict + enclave-accept handshake.
    """
    enclave = session.enclave
    original = enclave.page_permissions(vaddr)
    if Permissions.R in original:
        return session.read(vaddr, PAGE_SIZE)
    emodpe(session, vaddr, Permissions.R)
    data = session.read(vaddr, PAGE_SIZE)
    emodpr(session.cpu, enclave, vaddr, original)
    eaccept(session, vaddr)
    if enclave.page_permissions(vaddr) != original:  # pragma: no cover - guard
        raise SgxAccessFault("failed to restore original permissions")
    return data
