"""Memory Encryption Engine (MEE) and the page-sealing path of EWB.

"EWB encrypts a page in the EPC and writes it to unprotected memory ...
the evicted pages are encrypted by Page Encryption Key, which is unique
for each CPU and will never be retrieved outside the CPU" (§II-A).

The sealing key here is real key material held by the CPU object and
never exposed through any public API; pages sealed on one CPU genuinely
fail the MAC check on another.  This is the hardware fact that makes
naive checkpoint-based enclave migration impossible and motivates the
paper's software protocol.
"""

from __future__ import annotations

from repro.crypto.backend import get_backend
from repro.crypto.hashes import constant_time_equal, hmac_sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import SgxMacMismatch
from repro.sgx.structures import EvictedPage, PageType, Permissions


class MemoryEncryptionEngine:
    """Seals and unseals EPC pages under a CPU-unique key."""

    def __init__(self, page_encryption_key: SymmetricKey) -> None:
        self._enc_key = page_encryption_key.derive("page-enc")
        self._mac_key = page_encryption_key.derive("page-mac")

    def _nonce(self, eid: int, vaddr: int, version: int) -> bytes:
        return eid.to_bytes(4, "big") + version.to_bytes(4, "big")

    def _aad(self, eid: int, vaddr: int, page_type: PageType, version: int) -> bytes:
        return (
            eid.to_bytes(8, "big")
            + vaddr.to_bytes(8, "big")
            + page_type.value.encode()
            + version.to_bytes(8, "big")
        )

    def seal_page(
        self,
        plaintext: bytes,
        eid: int,
        vaddr: int,
        page_type: PageType,
        permissions: Permissions,
        version: int,
    ) -> EvictedPage:
        """Produce the sealed image EWB writes to normal memory."""
        ciphertext = get_backend().aes_ctr(
            self._enc_key.material[:16], self._nonce(eid, vaddr, version), plaintext
        )
        mac = hmac_sha256(
            self._mac_key.material, self._aad(eid, vaddr, page_type, version) + ciphertext
        )
        return EvictedPage(
            eid=eid,
            vaddr=vaddr,
            page_type=page_type,
            permissions=permissions,
            ciphertext=ciphertext,
            mac=mac,
            version=version,
        )

    def unseal_page(self, evicted: EvictedPage, expected_version: int) -> bytes:
        """Verify and decrypt a sealed page (the ELDB path).

        Raises :class:`SgxMacMismatch` if the blob was sealed by a
        different CPU, tampered with, or carries the wrong version — the
        "data, version and MAC must match" rule of §II-A.
        """
        if evicted.version != expected_version:
            raise SgxMacMismatch(
                f"version mismatch: blob={evicted.version} VA slot={expected_version}"
            )
        expected_mac = hmac_sha256(
            self._mac_key.material,
            self._aad(evicted.eid, evicted.vaddr, evicted.page_type, evicted.version)
            + evicted.ciphertext,
        )
        if not constant_time_equal(expected_mac, evicted.mac):
            raise SgxMacMismatch("evicted page MAC check failed (wrong CPU or tampering)")
        return get_backend().aes_ctr(
            self._enc_key.material[:16],
            self._nonce(evicted.eid, evicted.vaddr, evicted.version),
            evicted.ciphertext,
        )
