"""Hardware-side enclave state.

One :class:`EnclaveHw` corresponds to one SECS: the linear address range,
the page table from enclave virtual addresses to EPC slots, the TCS set
and the measurement log.  All byte access goes through ``hw_read`` /
``hw_write``, which only :mod:`repro.sgx.instructions` and
:class:`repro.sgx.cpu.EnclaveSession` (the enclave-mode capability) are
allowed to call — outside software never sees these objects' contents.
"""

from __future__ import annotations

from repro.errors import EnclavePageFault, SgxAccessFault, SgxInstructionFault
from repro.sgx.epc import Epc
from repro.sgx.measurement import MeasurementLog
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions, Secs, Tcs


class EnclaveHw:
    """An enclave as the processor sees it."""

    def __init__(self, eid: int, base: int, size: int, epc: Epc, secs_page_index: int) -> None:
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise SgxInstructionFault("enclave range must be page aligned")
        self.eid = eid
        self.secs = Secs(eid=eid, base=base, size=size)
        self.measurement = MeasurementLog()
        self.measurement.ecreate(base, size)
        self._epc = epc
        self._secs_page_index = secs_page_index
        # vaddr -> EPC page index, or None while the page is evicted.
        self._page_table: dict[int, int | None] = {}
        self._tcs: dict[int, Tcs] = {}
        self.dead = False  # set by EREMOVE of the SECS (enclave destroyed)
        # Set by the proposed EMIGRATE instruction (§VII-B): while frozen,
        # EENTER/ERESUME fault so the enclave state cannot change mid-copy.
        self.frozen = False

    # ----------------------------------------------------------------- layout
    def contains(self, vaddr: int) -> bool:
        return self.secs.base <= vaddr < self.secs.base + self.secs.size

    def mapped_vaddrs(self) -> list[int]:
        """All enclave page addresses, present or evicted, sorted."""
        return sorted(self._page_table)

    def tcs_at(self, vaddr: int) -> Tcs:
        tcs = self._tcs.get(vaddr)
        if tcs is None:
            raise SgxInstructionFault(f"no TCS at 0x{vaddr:x}")
        return tcs

    @property
    def tcs_list(self) -> list[Tcs]:
        return [self._tcs[v] for v in sorted(self._tcs)]

    def page_present(self, vaddr: int) -> bool:
        return self._page_table.get(vaddr) is not None

    def page_permissions(self, vaddr: int) -> Permissions:
        index = self._page_index(vaddr)
        return self._epc.entry(index).permissions

    def page_type(self, vaddr: int) -> PageType:
        index = self._page_index(vaddr)
        return self._epc.entry(index).page_type

    # ------------------------------------------------------- hardware internal
    def _check_alive(self) -> None:
        if self.dead:
            raise SgxInstructionFault(f"enclave {self.eid} has been destroyed")

    def _page_index(self, vaddr: int) -> int:
        self._check_alive()
        if vaddr % PAGE_SIZE:
            raise SgxInstructionFault(f"unaligned page address 0x{vaddr:x}")
        if vaddr not in self._page_table:
            raise SgxAccessFault(f"0x{vaddr:x} is not an enclave page of enclave {self.eid}")
        index = self._page_table[vaddr]
        if index is None:
            raise EnclavePageFault(vaddr)
        return index

    def _map_page(self, vaddr: int, epc_index: int, tcs: Tcs | None = None) -> None:
        if vaddr in self._page_table:
            raise SgxInstructionFault(f"page 0x{vaddr:x} already mapped")
        self._page_table[vaddr] = epc_index
        if tcs is not None:
            self._tcs[vaddr] = tcs

    def _evict_page(self, vaddr: int) -> int:
        """Mark a page evicted, returning the EPC index it occupied."""
        index = self._page_index(vaddr)
        self._page_table[vaddr] = None
        return index

    def _reload_page(self, vaddr: int, epc_index: int) -> None:
        if self._page_table.get(vaddr, 0) is not None:
            raise SgxInstructionFault(f"page 0x{vaddr:x} is not evicted")
        self._page_table[vaddr] = epc_index

    def _drop_page(self, vaddr: int) -> int | None:
        """Remove a page from the table entirely (EREMOVE)."""
        self._check_alive()
        if vaddr not in self._page_table:
            raise SgxInstructionFault(f"page 0x{vaddr:x} is not mapped")
        index = self._page_table.pop(vaddr)
        self._tcs.pop(vaddr, None)
        return index

    def hw_read(self, vaddr: int, n: int) -> bytes:
        """Read ``n`` bytes at ``vaddr`` (hardware / enclave-mode only).

        Crosses page boundaries; raises :class:`EnclavePageFault` if any
        touched page is evicted.
        """
        self._check_alive()
        out = bytearray()
        cursor = vaddr
        remaining = n
        while remaining > 0:
            page_base = cursor - (cursor % PAGE_SIZE)
            index = self._page_index(page_base)
            offset = cursor - page_base
            take = min(remaining, PAGE_SIZE - offset)
            out.extend(self._epc.page(index).data[offset : offset + take])
            cursor += take
            remaining -= take
        return bytes(out)

    def hw_write(self, vaddr: int, data: bytes) -> None:
        """Write bytes at ``vaddr`` (hardware / enclave-mode only)."""
        self._check_alive()
        cursor = vaddr
        view = memoryview(data)
        while view:
            page_base = cursor - (cursor % PAGE_SIZE)
            index = self._page_index(page_base)
            offset = cursor - page_base
            take = min(len(view), PAGE_SIZE - offset)
            self._epc.page(index).data[offset : offset + take] = view[:take]
            cursor += take
            view = view[take:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EnclaveHw eid={self.eid} base=0x{self.secs.base:x} "
            f"pages={len(self._page_table)} init={self.secs.initialized}>"
        )
