"""Enclave Page Cache (EPC) and its map (EPCM).

"EPC is a secure storage used by the processor ... divided into chunks of
4KB pages.  The processor tracks the metadata of the EPC in a secure
structure called EPCM, which is only accessible by hardware" (§II-A).

Pages are bookkeeping objects here; the *access rules* (only the owning
enclave, only in enclave mode) are enforced by :class:`repro.sgx.cpu.
EnclaveSession`, the single capability through which software touches
enclave memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SgxEpcExhausted, SgxInstructionFault
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions


@dataclass
class EpcmEntry:
    """EPCM metadata for one EPC page (hardware-only in real SGX)."""

    valid: bool = False
    page_type: PageType = PageType.REG
    owner_eid: int = -1
    vaddr: int = 0
    permissions: Permissions = Permissions.NONE


class EpcPage:
    """One 4 KB EPC page.

    ``data`` holds the byte content of REG pages.  SECS/TCS/VA pages carry
    a hardware object in ``hw_object`` instead (their content is never
    software-visible, so bytes would buy nothing but overhead).  The
    backing bytearray is allocated on first touch: a large EPC is mostly
    never-used zero pages, and allocating them eagerly costs seconds of
    real time per testbed.
    """

    __slots__ = ("index", "_data", "hw_object")

    def __init__(self, index: int) -> None:
        self.index = index
        self._data: bytearray | None = None
        self.hw_object: Any = None

    @property
    def data(self) -> bytearray:
        if self._data is None:
            self._data = bytearray(PAGE_SIZE)
        return self._data

    @data.setter
    def data(self, value: bytearray) -> None:
        self._data = value

    def wipe(self) -> None:
        self._data = None
        self.hw_object = None


class Epc:
    """A fixed-size EPC with allocation and EPCM bookkeeping."""

    def __init__(self, n_pages: int) -> None:
        if n_pages < 8:
            raise ValueError("EPC must have at least 8 pages")
        self.n_pages = n_pages
        self._pages = [EpcPage(i) for i in range(n_pages)]
        self._epcm = [EpcmEntry() for _ in range(n_pages)]
        self._free = list(range(n_pages - 1, -1, -1))

    # ------------------------------------------------------------- queries
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def used_count(self) -> int:
        return self.n_pages - len(self._free)

    def page(self, index: int) -> EpcPage:
        return self._pages[index]

    def entry(self, index: int) -> EpcmEntry:
        return self._epcm[index]

    def pages_of(self, eid: int) -> list[int]:
        """Indices of the valid pages owned by enclave ``eid``."""
        return [
            i for i, entry in enumerate(self._epcm) if entry.valid and entry.owner_eid == eid
        ]

    # ------------------------------------------------------------- lifecycle
    def alloc(
        self,
        owner_eid: int,
        vaddr: int,
        page_type: PageType,
        permissions: Permissions,
    ) -> EpcPage:
        """Allocate a free EPC page to an enclave.

        Raises :class:`SgxEpcExhausted` when the EPC is full — the caller
        (driver or hypervisor) is expected to evict a victim page first.
        """
        if not self._free:
            raise SgxEpcExhausted("no free EPC page")
        index = self._free.pop()
        entry = self._epcm[index]
        entry.valid = True
        entry.page_type = page_type
        entry.owner_eid = owner_eid
        entry.vaddr = vaddr
        entry.permissions = permissions
        page = self._pages[index]
        page.wipe()
        return page

    def free(self, index: int) -> None:
        """Release a page back to the free pool, scrubbing its content."""
        entry = self._epcm[index]
        if not entry.valid:
            raise SgxInstructionFault(f"EPC page {index} is not allocated")
        entry.valid = False
        entry.owner_eid = -1
        entry.permissions = Permissions.NONE
        self._pages[index].wipe()
        self._free.append(index)
