"""The paper's §VII-B hardware suggestions, implemented as an extension ISA.

"Currently, due to hardware limitations (both SGX v1 and v2), an enclave
cannot be migrated transparently and securely by system software.  In this
section, we give some suggestions on hardware design to assist transparent
enclave migration."

We implement every suggested instruction so the ablation benchmark can
compare the paper's *software* protocol (control thread, two-phase
checkpointing, CSSA tracking) against the *proposed hardware* path:

* **EPUTKEY**       — install migration keys into the CPU; only the
  special *control enclave* may execute it.
* **EMIGRATE**      — freeze an enclave (EENTER/ERESUME fault) so its
  state cannot change during the copy.
* **ESWPOUT**       — re-seal a resident EPC page under the migration
  keys (works for REG, TCS — including the hardware CSSA — and SECS).
* **ECHANGEOUT**    — translate an already-evicted page from the CPU
  sealing key to the migration keys.
* **ESWPIN / ECHANGEIN** — the inverse operations on the target.
* **EMIGRATEDONE**  — verify the stream MAC over everything swapped in
  and make the enclave runnable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.hashes import constant_time_equal, hmac_sha256, sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import AttestationError, SgxInstructionFault, SgxMacMismatch
from repro.serde import pack, unpack
from repro.sgx.cpu import SgxCpu
from repro.sgx.enclave import EnclaveHw
from repro.sgx.structures import (
    PAGE_SIZE,
    EvictedPage,
    PageType,
    Permissions,
    Tcs,
)

#: Well-known measurement of the (Intel-signed) control enclave, analogous
#: to the Quoting Enclave: EPUTKEY only executes on its behalf.
CONTROL_ENCLAVE_MRENCLAVE = sha256(b"repro/control-enclave/v1")


@dataclass(frozen=True)
class MigrationKeys:
    """The two keys §VII-B calls for: encryption plus signing."""

    encryption: SymmetricKey
    signing: SymmetricKey


class ControlEnclave:
    """The special per-machine enclave that negotiates migration keys.

    "We suggest that Intel can provide a special enclave, e.g., control
    enclave, for two machines to share the migration keys.  The control
    enclaves on the source and target machines can use remote attestation
    to authenticate each other and agree on randomly generated migration
    keys."
    """

    def __init__(self, cpu: SgxCpu) -> None:
        self.cpu = cpu
        self.mrenclave = CONTROL_ENCLAVE_MRENCLAVE

    def negotiate_keys(self, peer: "ControlEnclave") -> MigrationKeys:
        """Attested key agreement with the peer machine's control enclave.

        Modelled at the message level: both sides verify the peer is a
        genuine control enclave (same well-known measurement) and derive
        fresh keys.  The derived keys are installed on *both* CPUs with
        EPUTKEY by the caller.
        """
        if peer.mrenclave != CONTROL_ENCLAVE_MRENCLAVE:
            raise AttestationError("peer is not a genuine control enclave")
        if peer.cpu is self.cpu:
            raise SgxInstructionFault("migration keys require two distinct machines")
        material = self.cpu.rng.bytes(32) + peer.cpu.rng.bytes(32)
        root = SymmetricKey(sha256(material), "migration-root")
        return MigrationKeys(root.derive("encryption"), root.derive("signing"))


@dataclass(frozen=True)
class MigratablePage:
    """ESWPOUT/ECHANGEOUT output: a page sealed under the migration keys."""

    kind: str  # "secs" | "tcs" | "reg" | "evicted"
    vaddr: int
    seq: int
    ciphertext: bytes
    mac: bytes

    @property
    def size(self) -> int:
        return len(self.ciphertext) + len(self.mac) + 24


@dataclass
class _MigrationState:
    """Per-enclave hardware state while a migration is in flight."""

    keys: MigrationKeys
    seq: int = 0
    stream_hash: "hashlib._Hash" = field(default_factory=hashlib.sha256)


def eputkey(cpu: SgxCpu, control: ControlEnclave, keys: MigrationKeys) -> None:
    """Install migration keys into the CPU (control enclave only)."""
    if control.cpu is not cpu:
        raise SgxInstructionFault("EPUTKEY must run on the local control enclave")
    if control.mrenclave != CONTROL_ENCLAVE_MRENCLAVE:
        raise SgxInstructionFault("EPUTKEY requires the control enclave")
    cpu._installed_migration_keys = keys  # hardware register, not software-visible


def _migration_keys(cpu: SgxCpu) -> MigrationKeys:
    keys = getattr(cpu, "_installed_migration_keys", None)
    if keys is None:
        raise SgxInstructionFault("no migration keys installed (EPUTKEY first)")
    return keys


def emigrate(cpu: SgxCpu, enclave: EnclaveHw) -> None:
    """Freeze the enclave: all entries fault until EMIGRATEDONE elsewhere."""
    cpu.charge(cpu.costs.eenter_ns)
    keys = _migration_keys(cpu)
    if any(t._active for t in enclave.tcs_list):
        raise SgxInstructionFault("EMIGRATE requires no logical processor inside")
    enclave.frozen = True
    enclave._migration_state = _MigrationState(keys)
    cpu.trace.emit("sgx", "emigrate", cpu=cpu.name, eid=enclave.eid)


def _require_migrating(enclave: EnclaveHw) -> _MigrationState:
    state = getattr(enclave, "_migration_state", None)
    if state is None or not enclave.frozen:
        raise SgxInstructionFault("ESWPOUT/ECHANGEOUT only after EMIGRATE")
    return state


def _seal(state: _MigrationState, kind: str, vaddr: int, plaintext: bytes) -> MigratablePage:
    seq = state.seq
    state.seq += 1
    nonce = seq.to_bytes(8, "big")
    from repro.crypto.backend import get_backend

    ciphertext = get_backend().aes_ctr(state.keys.encryption.material[:16], nonce, plaintext)
    aad = kind.encode() + vaddr.to_bytes(8, "big") + nonce
    mac = hmac_sha256(state.keys.signing.material, aad + ciphertext)
    state.stream_hash.update(mac)
    return MigratablePage(kind, vaddr, seq, ciphertext, mac)


def _unseal(keys: MigrationKeys, page: MigratablePage) -> bytes:
    nonce = page.seq.to_bytes(8, "big")
    aad = page.kind.encode() + page.vaddr.to_bytes(8, "big") + nonce
    expected = hmac_sha256(keys.signing.material, aad + page.ciphertext)
    if not constant_time_equal(expected, page.mac):
        raise SgxMacMismatch("migratable page MAC check failed")
    from repro.crypto.backend import get_backend

    return get_backend().aes_ctr(keys.encryption.material[:16], nonce, page.ciphertext)


def eswpout_secs(cpu: SgxCpu, enclave: EnclaveHw) -> MigratablePage:
    """Swap out the SECS itself — the piece SGX v1 can never externalize."""
    cpu.charge(cpu.costs.ewb_page_ns)
    state = _require_migrating(enclave)
    secs = enclave.secs
    payload = pack(
        {
            "base": secs.base,
            "size": secs.size,
            "mrenclave": secs.mrenclave,
            "mrsigner": secs.mrsigner,
            "attributes": secs.attributes,
        }
    )
    return _seal(state, "secs", 0, payload)


def eswpout(cpu: SgxCpu, enclave: EnclaveHw, vaddr: int) -> MigratablePage:
    """Swap out one resident page under the migration keys."""
    cpu.charge(cpu.costs.ewb_page_ns)
    state = _require_migrating(enclave)
    index = enclave._page_index(vaddr)
    entry = cpu.epc.entry(index)
    if entry.page_type is PageType.TCS:
        tcs = cpu.epc.page(index).hw_object
        payload = pack(
            {
                "vaddr": tcs.vaddr,
                "oentry": tcs.oentry,
                "ossa": tcs.ossa,
                "nssa": tcs.nssa,
                "cssa": tcs._cssa,  # hardware migrates what software cannot read
            }
        )
        kind = "tcs"
    else:
        payload = pack(
            {"perms": entry.permissions.value, "data": bytes(cpu.epc.page(index).data)}
        )
        kind = "reg"
    blob = _seal(state, kind, vaddr, payload)
    enclave._evict_page(vaddr)
    cpu.epc.free(index)
    return blob


def echangeout(cpu: SgxCpu, enclave: EnclaveHw, evicted: EvictedPage, va_index: int, slot: int) -> MigratablePage:
    """Re-key an already-evicted page from the CPU key to the migration keys.

    "Some enclave pages may have been evicted to normal memory before
    migration.  For such pages, a new instruction called ECHANGEOUT can
    change its original encryption key to the migration encryption key."
    """
    cpu.charge(cpu.costs.ewb_page_ns)
    state = _require_migrating(enclave)
    from repro.sgx.instructions import _va_slots

    slots = _va_slots(cpu, va_index)
    plaintext = cpu.mee.unseal_page(evicted, slots[slot])
    slots[slot] = 0
    enclave._drop_page(evicted.vaddr)
    payload = pack({"perms": evicted.permissions.value, "data": plaintext})
    return _seal(state, "reg", evicted.vaddr, payload)


def ectrout(cpu: SgxCpu, enclave: EnclaveHw, counters: dict[str, int]) -> MigratablePage:
    """Swap out the enclave's monotonic-counter bank under the migration keys.

    The §VII-B suggestions stop at memory pages; sealed storage adds one
    more piece of state SGX v1/v2 cannot externalize — the counter bank
    that anchors freshness.  ECTROUT seals the (name → value) bank into
    the same MAC'd migration stream as the pages, so the proposed
    hardware path can carry it without the software handoff step.
    """
    cpu.charge(cpu.costs.ewb_page_ns)
    state = _require_migrating(enclave)
    bank = {str(name): int(value) for name, value in counters.items()}
    if any(value < 0 for value in bank.values()):
        raise SgxInstructionFault("ECTROUT: counter values must be non-negative")
    return _seal(state, "ctr", 0, pack({"counters": bank}))


def ectrin(
    cpu: SgxCpu, page: MigratablePage, current: dict[str, int]
) -> dict[str, int]:
    """Install a migrated counter bank; the hardware refuses rewinds.

    ``current`` is the target CPU's view of the same counters.  A bank
    whose value for any counter is below the local value would hand the
    adversary a hardware-blessed rollback, so the instruction faults
    instead of clamping — policy belongs to software, rejection to
    hardware.
    """
    cpu.charge(cpu.costs.ewb_page_ns)
    keys = _migration_keys(cpu)
    if page.kind != "ctr":
        raise SgxInstructionFault("ECTRIN requires a counter-bank page")
    bank = unpack(_unseal(keys, page))["counters"]
    for name, value in current.items():
        incoming = int(bank.get(str(name), 0))
        if incoming < int(value):
            raise SgxInstructionFault(
                f"ECTRIN: counter {name!r} would rewind from {value} to {incoming}"
            )
    return {str(name): int(value) for name, value in bank.items()}


def finalize_stream(enclave: EnclaveHw) -> bytes:
    """Source-side: MAC over the whole migration stream (sent last)."""
    state = _require_migrating(enclave)
    return hmac_sha256(state.keys.signing.material, b"stream" + state.stream_hash.digest())


# ---------------------------------------------------------------------------
# Target side
# ---------------------------------------------------------------------------

def eswpin_secs(cpu: SgxCpu, page: MigratablePage) -> EnclaveHw:
    """Recreate the enclave shell from a migrated SECS."""
    cpu.charge(cpu.costs.eldb_page_ns)
    keys = _migration_keys(cpu)
    fields = unpack(_unseal(keys, page))
    eid = cpu.new_eid()
    secs_page = cpu.epc.alloc(eid, vaddr=0, page_type=PageType.SECS, permissions=Permissions.NONE)
    enclave = EnclaveHw(eid, fields["base"], fields["size"], cpu.epc, secs_page.index)
    enclave.secs.mrenclave = fields["mrenclave"]
    enclave.secs.mrsigner = fields["mrsigner"]
    enclave.secs.attributes = fields["attributes"]
    enclave.secs.initialized = True
    enclave.measurement.finalize()
    enclave.frozen = True  # stays frozen until EMIGRATEDONE
    enclave._migration_state = _MigrationState(keys)
    enclave._migration_state.stream_hash.update(page.mac)
    secs_page.hw_object = enclave.secs
    cpu.enclaves[eid] = enclave
    return enclave


def eswpin(cpu: SgxCpu, enclave: EnclaveHw, page: MigratablePage) -> None:
    """Install one migrated page into the target enclave."""
    cpu.charge(cpu.costs.eldb_page_ns)
    state = _require_migrating(enclave)
    payload = _unseal(state.keys, page)
    state.stream_hash.update(page.mac)
    fields = unpack(payload)
    if page.kind == "tcs":
        tcs = Tcs(fields["vaddr"], fields["oentry"], fields["ossa"], fields["nssa"])
        tcs._cssa = fields["cssa"]
        epc_page = cpu.epc.alloc(enclave.eid, page.vaddr, PageType.TCS, Permissions.NONE)
        epc_page.hw_object = tcs
        enclave._map_page(page.vaddr, epc_page.index, tcs=tcs)
    elif page.kind == "reg":
        perms = Permissions(fields["perms"])
        epc_page = cpu.epc.alloc(enclave.eid, page.vaddr, PageType.REG, perms)
        epc_page.data[: len(fields["data"])] = fields["data"]
        enclave._map_page(page.vaddr, epc_page.index)
    else:
        raise SgxInstructionFault(f"ESWPIN cannot install kind {page.kind!r}")


#: ECHANGEIN mirrors ESWPIN for pages that should land evicted; for the
#: model we always land pages resident, so it is the same operation.
echangein = eswpin


def emigratedone(cpu: SgxCpu, enclave: EnclaveHw, stream_mac: bytes) -> None:
    """Verify the migrated state and make the enclave runnable."""
    cpu.charge(cpu.costs.einit_ns)
    state = _require_migrating(enclave)
    expected = hmac_sha256(state.keys.signing.material, b"stream" + state.stream_hash.digest())
    if not constant_time_equal(expected, stream_mac):
        raise SgxMacMismatch("EMIGRATEDONE stream verification failed")
    enclave.frozen = False
    del enclave._migration_state
    cpu.trace.emit("sgx", "emigratedone", cpu=cpu.name, eid=enclave.eid)
