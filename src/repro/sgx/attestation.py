"""Local and remote attestation: Quoting Enclave, IAS stand-in, owners.

"SGX enables a particular enclave, called the Quoting Enclave, which is
devoted to remote attestation ... The enclave owner can use attestation
services, e.g., IAS, to assess the trustworthiness of the assertion"
(§II-A).  The trust structure is reproduced faithfully:

* an enclave EREPORTs to the Quoting Enclave (local attestation, only
  valid on the same CPU);
* the Quoting Enclave signs a QUOTE with a platform attestation key;
* the :class:`AttestationService` (IAS) knows the platform keys and signs
  verification reports with its own key;
* relying parties (enclave owners — and during migration, the *source
  control thread*, §III Step-2) hold only the IAS public key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.crypto.keys import KeyPair
from repro.crypto.rsa import RsaPublicKey, generate_rsa_keypair
from repro.errors import AttestationError, QuoteRejected
from repro.serde import pack
from repro.sgx.cpu import EnclaveSession, SgxCpu
from repro.sgx.instructions import REPORT_DATA_LEN, ereport
from repro.sgx.structures import Quote, Report, TargetInfo
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel

#: The measurement every Quoting Enclave instance reports.  Publicly known
#: (it identifies Intel's signed QE binary); used as the EREPORT target.
QUOTING_ENCLAVE_MRENCLAVE = sha256(b"repro/quoting-enclave/v1")


class QuotingEnclave:
    """The platform's quoting enclave.

    Holds the (provisioned) platform attestation key.  Turns a local
    REPORT addressed to it into a remotely verifiable QUOTE.
    """

    def __init__(self, cpu: SgxCpu, attestation_key: KeyPair) -> None:
        self.cpu = cpu
        self._attestation_key = attestation_key
        self.mrenclave = QUOTING_ENCLAVE_MRENCLAVE

    @property
    def target_info(self) -> TargetInfo:
        """What an enclave passes to EREPORT to address this QE."""
        return TargetInfo(self.mrenclave)

    def quote(self, report: Report) -> Quote:
        """Verify the local report and sign a quote for it."""
        from repro.crypto.hashes import constant_time_equal, hmac_sha256

        expected = hmac_sha256(self.cpu._report_key_for(self.mrenclave), report.body())
        if not constant_time_equal(expected, report.mac):
            raise AttestationError("report MAC invalid: produced on a different CPU?")
        unsigned = Quote(
            mrenclave=report.mrenclave,
            mrsigner=report.mrsigner,
            attributes=report.attributes,
            platform_id=self.cpu.platform_id,
            report_data=report.report_data,
            signature=b"",
        )
        signature = self._attestation_key.private.sign(unsigned.signed_body())
        return Quote(
            mrenclave=unsigned.mrenclave,
            mrsigner=unsigned.mrsigner,
            attributes=unsigned.attributes,
            platform_id=unsigned.platform_id,
            report_data=unsigned.report_data,
            signature=signature,
        )


def quote_for(session: EnclaveSession, qe: QuotingEnclave, report_data: bytes) -> Quote:
    """Convenience: EREPORT to the QE, then ask it for a quote."""
    if len(report_data) > REPORT_DATA_LEN:
        raise AttestationError("report data exceeds 64 bytes")
    report = ereport(session, qe.target_info, report_data)
    return qe.quote(report)


@dataclass(frozen=True)
class AttestationVerificationReport:
    """IAS response: the verified quote body plus the service's signature."""

    quote_body_hash: bytes
    mrenclave: bytes
    mrsigner: bytes
    report_data: bytes
    status: str
    signature: bytes

    def signed_body(self) -> bytes:
        return pack(
            {
                "quote_body_hash": self.quote_body_hash,
                "mrenclave": self.mrenclave,
                "mrsigner": self.mrsigner,
                "report_data": self.report_data,
                "status": self.status,
            }
        )


class AttestationService:
    """IAS stand-in: verifies quotes against registered platform keys."""

    def __init__(self, clock: VirtualClock, costs: CostModel, keypair: KeyPair) -> None:
        self._clock = clock
        self._costs = costs
        self._keypair = keypair
        self._platforms: dict[bytes, RsaPublicKey] = {}

    @property
    def public_key(self) -> RsaPublicKey:
        """The trust anchor relying parties pin."""
        return self._keypair.public

    def register_platform(self, platform_id: bytes, attestation_public_key: RsaPublicKey) -> None:
        """Enroll a platform (done once, out of band, by the manufacturer)."""
        self._platforms[platform_id] = attestation_public_key

    def verify_quote(self, quote: Quote) -> AttestationVerificationReport:
        """Check a quote's platform signature and issue a signed AVR."""
        self._clock.advance(self._costs.ias_processing_ns)
        platform_key = self._platforms.get(quote.platform_id)
        if platform_key is None:
            raise QuoteRejected("unknown platform")
        if not platform_key.is_valid(quote.signed_body(), quote.signature):
            raise QuoteRejected("quote signature invalid")
        body = AttestationVerificationReport(
            quote_body_hash=sha256(quote.signed_body()),
            mrenclave=quote.mrenclave,
            mrsigner=quote.mrsigner,
            report_data=quote.report_data,
            status="OK",
            signature=b"",
        )
        signature = self._keypair.private.sign(body.signed_body())
        return AttestationVerificationReport(
            quote_body_hash=body.quote_body_hash,
            mrenclave=body.mrenclave,
            mrsigner=body.mrsigner,
            report_data=body.report_data,
            status=body.status,
            signature=signature,
        )


def verify_avr(
    avr: AttestationVerificationReport,
    ias_public_key: RsaPublicKey,
    expected_mrenclave: bytes,
) -> None:
    """Relying-party check of an AVR: IAS signature, status, measurement."""
    ias_public_key.verify(avr.signed_body(), avr.signature)
    if avr.status != "OK":
        raise QuoteRejected(f"attestation status {avr.status}")
    if avr.mrenclave != expected_mrenclave:
        raise QuoteRejected(
            f"measurement mismatch: expected {expected_mrenclave.hex()[:16]}, "
            f"got {avr.mrenclave.hex()[:16]}"
        )


def provision_platform(cpu: SgxCpu, ias: AttestationService) -> QuotingEnclave:
    """Manufacture-time setup: give a CPU a QE and register it with IAS."""
    attestation_key = KeyPair(
        generate_rsa_keypair(cpu.rng.fork("attestation-key")), f"{cpu.name}/attestation"
    )
    qe = QuotingEnclave(cpu, attestation_key)
    ias.register_platform(cpu.platform_id, attestation_key.public)
    return qe
