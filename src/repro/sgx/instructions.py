"""The SGX v1 instruction set.

Each function models one leaf instruction with the state checks the
migration protocol depends on, charging its modelled latency to the CPU's
clock.  The instruction semantics follow §II-A of the paper:

* build:   ECREATE, EADD, EEXTEND, EINIT
* enter:   EENTER (returns CSSA in rax), EEXIT, AEX, ERESUME
* paging:  EWB, ELDB/ELDU (MEE-sealed, version-checked), EREMOVE
* crypto:  EGETKEY, EREPORT (local attestation)
"""

from __future__ import annotations

from typing import Any

from repro.crypto.hashes import constant_time_equal, hmac_sha256, sha256
from repro.crypto.rsa import RsaPublicKey
from repro.errors import SgxInstructionFault
from repro.sgx.cpu import EnclaveSession, SgxCpu
from repro.sgx.enclave import EnclaveHw
from repro.sgx.structures import (
    PAGE_SIZE,
    VA_SLOTS_PER_PAGE,
    EvictedPage,
    PageType,
    Permissions,
    Report,
    SecInfo,
    SigStruct,
    SsaFrame,
    TargetInfo,
    Tcs,
)

REPORT_DATA_LEN = 64


# ---------------------------------------------------------------------------
# Enclave build
# ---------------------------------------------------------------------------

def ecreate(cpu: SgxCpu, base: int, size: int) -> EnclaveHw:
    """Create an enclave: allocate its SECS page and open the measurement."""
    eid = cpu.new_eid()
    cpu.meter("ecreate", cpu.costs.ecreate_ns, eid=eid)
    secs_page = cpu.epc.alloc(eid, vaddr=0, page_type=PageType.SECS, permissions=Permissions.NONE)
    enclave = EnclaveHw(eid, base, size, cpu.epc, secs_page.index)
    secs_page.hw_object = enclave.secs
    cpu.enclaves[eid] = enclave
    cpu.trace.emit("sgx", "ecreate", cpu=cpu.name, eid=eid, base=base, size=size)
    return enclave


def eadd(
    cpu: SgxCpu,
    enclave: EnclaveHw,
    vaddr: int,
    content: bytes | Tcs,
    sec_info: SecInfo,
) -> None:
    """Add one page to a not-yet-initialized enclave."""
    cpu.charge(cpu.costs.eadd_page_ns)
    if enclave.secs.initialized:
        raise SgxInstructionFault("EADD after EINIT is not allowed in SGX v1")
    if not enclave.contains(vaddr):
        raise SgxInstructionFault(f"0x{vaddr:x} is outside the enclave range")
    page = cpu.epc.alloc(enclave.eid, vaddr, sec_info.page_type, sec_info.permissions)
    if sec_info.page_type is PageType.TCS:
        if not isinstance(content, Tcs):
            raise SgxInstructionFault("TCS page content must be a TCS structure")
        page.hw_object = content
        enclave._map_page(vaddr, page.index, tcs=content)
    elif sec_info.page_type is PageType.REG:
        if not isinstance(content, (bytes, bytearray)):
            raise SgxInstructionFault("REG page content must be bytes")
        if len(content) > PAGE_SIZE:
            raise SgxInstructionFault("page content exceeds 4KB")
        page.data[: len(content)] = content
        enclave._map_page(vaddr, page.index)
    else:
        raise SgxInstructionFault(f"EADD cannot add {sec_info.page_type} pages")
    enclave.measurement.eadd(vaddr, sec_info)


def _page_measure_bytes(cpu: SgxCpu, enclave: EnclaveHw, vaddr: int) -> bytes:
    index = enclave._page_index(vaddr)
    page = cpu.epc.page(index)
    if cpu.epc.entry(index).page_type is PageType.TCS:
        return page.hw_object.to_bytes().ljust(PAGE_SIZE, b"\x00")
    return bytes(page.data)


def eextend(cpu: SgxCpu, enclave: EnclaveHw, vaddr: int) -> None:
    """Measure one previously added page into MRENCLAVE."""
    cpu.charge(cpu.costs.eextend_page_ns)
    if enclave.secs.initialized:
        raise SgxInstructionFault("EEXTEND after EINIT is not allowed")
    enclave.measurement.eextend(vaddr, _page_measure_bytes(cpu, enclave, vaddr))


def einit(cpu: SgxCpu, enclave: EnclaveHw, sigstruct: SigStruct) -> None:
    """Finalize the measurement and verify the image signature."""
    cpu.charge(cpu.costs.einit_ns)
    if enclave.secs.initialized:
        raise SgxInstructionFault("enclave already initialized")
    mrenclave = enclave.measurement.finalize()
    if not constant_time_equal(mrenclave, sigstruct.mrenclave):
        raise SgxInstructionFault("SIGSTRUCT measurement does not match the built enclave")
    signer = RsaPublicKey(sigstruct.signer_modulus, 65537)
    signer.verify(sigstruct.signed_body(), sigstruct.signature)
    enclave.secs.mrenclave = mrenclave
    enclave.secs.mrsigner = sha256(sigstruct.signer_modulus.to_bytes(128, "big"))
    enclave.secs.initialized = True
    cpu.trace.emit("sgx", "einit", cpu=cpu.name, eid=enclave.eid, mrenclave=mrenclave.hex()[:16])


# ---------------------------------------------------------------------------
# Entry / exit / exception flow
# ---------------------------------------------------------------------------

def eenter(cpu: SgxCpu, enclave: EnclaveHw, tcs_vaddr: int, aep: object = None) -> EnclaveSession:
    """Enter the enclave through a TCS.

    The session's ``rax`` carries the current CSSA — "its current value
    will be stored in register rax as the return value of EENTER
    instruction" (§IV-C) — which is the only architectural window the
    in-enclave tracking has onto the hardware counter.
    """
    cpu.charge(cpu.costs.eenter_ns)
    if not enclave.secs.initialized:
        raise SgxInstructionFault("EENTER before EINIT")
    if enclave.frozen:
        raise SgxInstructionFault("enclave is frozen by EMIGRATE")
    tcs = enclave.tcs_at(tcs_vaddr)
    if tcs._active:
        raise SgxInstructionFault(f"TCS 0x{tcs_vaddr:x} is already in use")
    if tcs._cssa >= tcs.nssa:
        raise SgxInstructionFault("out of SSA frames (CSSA == NSSA)")
    tcs._active = True
    return EnclaveSession(cpu, enclave, tcs, aep, rax=tcs._cssa, entered_via="eenter")


def eexit(session: EnclaveSession) -> None:
    """Synchronous exit: leaves CSSA unchanged (EENTER/EEXIT pair, Fig. 5)."""
    session._require_open()
    session.cpu.charge(session.cpu.costs.eexit_ns)
    session.tcs._active = False
    session._close()


def aex(session: EnclaveSession, context: dict[str, Any]) -> None:
    """Asynchronous Enclave Exit.

    Saves the interrupted context into SSA[CSSA], increments CSSA, scrubs
    the (modelled) processor state and leaves enclave mode.  Control
    returns to the AEP in the untrusted SGX library.
    """
    session._require_open()
    cpu = session.cpu
    cpu.charge(cpu.costs.aex_ns)
    tcs = session.tcs
    if tcs._cssa >= tcs.nssa:
        raise SgxInstructionFault("AEX with no free SSA frame")
    frame_bytes = SsaFrame(dict(context)).to_bytes()
    if len(frame_bytes) > PAGE_SIZE:
        raise SgxInstructionFault("execution context exceeds one SSA frame")
    ssa_vaddr = tcs.ossa + tcs._cssa * PAGE_SIZE
    session.enclave.hw_write(ssa_vaddr, frame_bytes.ljust(PAGE_SIZE, b"\x00"))
    tcs._cssa += 1
    tcs._active = False
    cpu.aex_count += 1
    cpu.trace.count("aex")
    session._close()


def eresume(cpu: SgxCpu, enclave: EnclaveHw, tcs_vaddr: int, aep: object = None):
    """Resume an interrupted thread from its saved SSA frame.

    Decrements CSSA and returns ``(session, context)`` — the pair the SGX
    library uses to continue execution at the interrupted point.
    """
    cpu.charge(cpu.costs.eresume_ns)
    if not enclave.secs.initialized:
        raise SgxInstructionFault("ERESUME before EINIT")
    if enclave.frozen:
        raise SgxInstructionFault("enclave is frozen by EMIGRATE")
    tcs = enclave.tcs_at(tcs_vaddr)
    if tcs._active:
        raise SgxInstructionFault(f"TCS 0x{tcs_vaddr:x} is already in use")
    if tcs._cssa == 0:
        raise SgxInstructionFault("ERESUME with CSSA == 0 (nothing to resume)")
    tcs._cssa -= 1
    ssa_vaddr = tcs.ossa + tcs._cssa * PAGE_SIZE
    frame_bytes = enclave.hw_read(ssa_vaddr, PAGE_SIZE).rstrip(b"\x00")
    context = SsaFrame.from_bytes(frame_bytes).context
    tcs._active = True
    session = EnclaveSession(cpu, enclave, tcs, aep, rax=tcs._cssa, entered_via="eresume")
    return session, context


# ---------------------------------------------------------------------------
# Paging (EWB / ELDB) and teardown
# ---------------------------------------------------------------------------

def alloc_va_page(cpu: SgxCpu) -> int:
    """Allocate a Version Array page; returns its EPC index."""
    page = cpu.epc.alloc(owner_eid=0, vaddr=0, page_type=PageType.VA, permissions=Permissions.NONE)
    page.hw_object = [0] * VA_SLOTS_PER_PAGE
    return page.index


def _va_slots(cpu: SgxCpu, va_index: int) -> list[int]:
    entry = cpu.epc.entry(va_index)
    if not entry.valid or entry.page_type is not PageType.VA:
        raise SgxInstructionFault(f"EPC page {va_index} is not a Version Array page")
    return cpu.epc.page(va_index).hw_object


def ewb(cpu: SgxCpu, enclave: EnclaveHw, vaddr: int, va_index: int, slot: int) -> EvictedPage:
    """Evict one page: seal it to normal memory and record its version."""
    cpu.meter("ewb", cpu.costs.ewb_page_ns, eid=enclave.eid)
    slots = _va_slots(cpu, va_index)
    if slots[slot] != 0:
        raise SgxInstructionFault(f"VA slot {slot} is already in use")
    index = enclave._page_index(vaddr)
    entry = cpu.epc.entry(index)
    if entry.page_type is PageType.SECS:
        raise SgxInstructionFault("cannot EWB the SECS while the enclave lives")
    if entry.page_type is PageType.TCS and cpu.epc.page(index).hw_object._active:
        raise SgxInstructionFault("cannot EWB an active TCS")
    if entry.page_type is PageType.TCS:
        # Unlike the measured build-time template, the sealed image
        # carries the full hardware state — including CSSA.
        from repro.serde import pack

        tcs = cpu.epc.page(index).hw_object
        plaintext = pack(
            {
                "vaddr": tcs.vaddr,
                "oentry": tcs.oentry,
                "ossa": tcs.ossa,
                "nssa": tcs.nssa,
                "cssa": tcs._cssa,
            }
        ).ljust(PAGE_SIZE, b"\x00")
    else:
        plaintext = bytes(cpu.epc.page(index).data)
    version = cpu.next_version()
    sealed = cpu.mee.seal_page(
        plaintext, enclave.eid, vaddr, entry.page_type, entry.permissions, version
    )
    slots[slot] = version
    enclave._evict_page(vaddr)
    cpu.epc.free(index)
    cpu.trace.count("ewb")
    return sealed


def eldb(cpu: SgxCpu, enclave: EnclaveHw, evicted: EvictedPage, va_index: int, slot: int) -> None:
    """Load an evicted page back into the EPC after MAC/version checks (ELDU
    differs only in blocked-state bookkeeping we do not model)."""
    cpu.meter("eldu", cpu.costs.eldb_page_ns, eid=enclave.eid)
    slots = _va_slots(cpu, va_index)
    expected_version = slots[slot]
    if expected_version == 0:
        raise SgxInstructionFault(f"VA slot {slot} holds no version")
    if evicted.eid != enclave.eid:
        raise SgxInstructionFault("evicted page belongs to a different enclave")
    plaintext = cpu.mee.unseal_page(evicted, expected_version)  # may raise SgxMacMismatch
    page = cpu.epc.alloc(enclave.eid, evicted.vaddr, evicted.page_type, evicted.permissions)
    if evicted.page_type is PageType.TCS:
        # Rebuild the TCS object from its sealed image, preserving CSSA.
        from repro.serde import unpack

        fields = unpack(plaintext.rstrip(b"\x00"))
        tcs = Tcs(fields["vaddr"], fields["oentry"], fields["ossa"], fields["nssa"])
        tcs._cssa = fields.get("cssa", 0)
        page.hw_object = tcs
        enclave._tcs[evicted.vaddr] = tcs
    else:
        page.data[:] = plaintext
    slots[slot] = 0
    enclave._reload_page(evicted.vaddr, page.index)
    cpu.trace.count("eldb")


#: ELDU differs from ELDB only in the blocked-state bookkeeping we do not
#: model; expose it as an alias so driver code reads like the manual.
eldu = eldb


def eremove(cpu: SgxCpu, enclave: EnclaveHw, vaddr: int) -> None:
    """Remove one enclave page, scrubbing its contents."""
    cpu.charge(cpu.costs.eremove_page_ns)
    index = enclave._page_index(vaddr)
    entry = cpu.epc.entry(index)
    if entry.page_type is PageType.TCS and cpu.epc.page(index).hw_object._active:
        raise SgxInstructionFault("cannot EREMOVE an active TCS")
    enclave._drop_page(vaddr)
    cpu.epc.free(index)


def destroy_enclave(cpu: SgxCpu, enclave: EnclaveHw) -> None:
    """EREMOVE every page and finally the SECS (driver teardown path)."""
    for vaddr in list(enclave.mapped_vaddrs()):
        if enclave.page_present(vaddr):
            eremove(cpu, enclave, vaddr)
        else:
            enclave._drop_page(vaddr)  # evicted page: nothing in EPC to free
    cpu.epc.free(enclave._secs_page_index)
    enclave.dead = True
    del cpu.enclaves[enclave.eid]
    cpu.trace.emit("sgx", "destroy", cpu=cpu.name, eid=enclave.eid)


# ---------------------------------------------------------------------------
# Keys and local attestation
# ---------------------------------------------------------------------------

def egetkey(session: EnclaveSession, key_type: str) -> bytes:
    """Derive a key available only to this enclave on this CPU."""
    session._require_open()
    cpu = session.cpu
    cpu.charge(cpu.costs.egetkey_ns)
    secs = session.enclave.secs
    if key_type == "report":
        return cpu._report_key_for(secs.mrenclave)
    if key_type == "seal_mrenclave":
        return cpu._seal_key_for(b"enclave" + secs.mrenclave)
    if key_type == "seal_mrsigner":
        return cpu._seal_key_for(b"signer" + secs.mrsigner)
    raise SgxInstructionFault(f"unknown key type {key_type!r}")


def ereport(session: EnclaveSession, target: TargetInfo, report_data: bytes) -> Report:
    """Produce local-attestation evidence for ``target`` on the same CPU."""
    session._require_open()
    cpu = session.cpu
    cpu.charge(cpu.costs.ereport_ns)
    if len(report_data) > REPORT_DATA_LEN:
        raise SgxInstructionFault("report data exceeds 64 bytes")
    secs = session.enclave.secs
    report = Report(
        mrenclave=secs.mrenclave,
        mrsigner=secs.mrsigner,
        attributes=secs.attributes,
        cpu_id=cpu.cpu_id,
        report_data=report_data.ljust(REPORT_DATA_LEN, b"\x00"),
        mac=b"",
    )
    mac = hmac_sha256(cpu._report_key_for(target.mrenclave), report.body())
    return Report(
        mrenclave=report.mrenclave,
        mrsigner=report.mrsigner,
        attributes=report.attributes,
        cpu_id=report.cpu_id,
        report_data=report.report_data,
        mac=mac,
    )


def verify_report(session: EnclaveSession, report: Report) -> bool:
    """Verify a report addressed to the calling enclave (local attestation).

    The verifier derives its own report key with EGETKEY and recomputes
    the MAC; this only succeeds on the CPU that produced the report.
    """
    key = egetkey(session, "report")
    return constant_time_equal(hmac_sha256(key, report.body()), report.mac)
