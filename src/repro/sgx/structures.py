"""SGX architectural data structures.

These mirror the structures of §II-A of the paper: SECS (enclave control
structure), TCS (thread control structure, with the hardware-only CSSA
field that drives §IV-C), SSA frames, page metadata, and the attestation
structures (SIGSTRUCT, REPORT, QUOTE).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SgxAccessFault
from repro.serde import pack, unpack

PAGE_SIZE = 4096

#: Number of SSA frames per TCS.  Two levels of nested exception handling
#: are all the SDK's handler model ever needs; a third frame gives slack.
DEFAULT_NSSA = 3

#: Slots in one Version Array page (real SGX: 4096/8 = 512).
VA_SLOTS_PER_PAGE = 512


class PageType(enum.Enum):
    """EPC page types tracked by the EPCM."""

    SECS = "secs"
    TCS = "tcs"
    REG = "reg"
    VA = "va"


class Permissions(enum.Flag):
    """EPC page access permissions."""

    NONE = 0
    R = enum.auto()
    W = enum.auto()
    X = enum.auto()
    RW = R | W
    RX = R | X
    RWX = R | W | X


@dataclass(frozen=True)
class SecInfo:
    """Security attributes supplied to EADD for one page."""

    page_type: PageType
    permissions: Permissions

    def to_bytes(self) -> bytes:
        return f"{self.page_type.value}:{self.permissions.value}".encode().ljust(64, b"\x00")


@dataclass
class Secs:
    """SGX Enclave Control Structure.

    Lives in an EPC page that no software — not even the enclave — can
    read.  The only way to recreate it on a target machine is to rebuild
    the enclave from its image (restore Step-1 of §III).
    """

    eid: int
    base: int
    size: int
    mrenclave: bytes = b""
    mrsigner: bytes = b""
    attributes: int = 0
    initialized: bool = False


class Tcs:
    """Thread Control Structure.

    ``CSSA`` is maintained by the processor and *cannot be read or written
    by any software, including the enclave itself* — the property below
    faults exactly like real hardware, and the in-enclave tracking of
    §IV-C exists because of it.  Hardware code inside :mod:`repro.sgx`
    uses the underscored attribute directly.
    """

    def __init__(self, vaddr: int, oentry: str, ossa: int, nssa: int = DEFAULT_NSSA) -> None:
        self.vaddr = vaddr
        self.oentry = oentry          # named entry point in the image
        self.ossa = ossa              # SSA region base vaddr
        self.nssa = nssa
        self._cssa = 0                # hardware-only
        self._active = False          # a logical processor is inside

    # -- software-facing view -------------------------------------------------
    @property
    def cssa(self) -> int:
        raise SgxAccessFault("TCS.CSSA is maintained by hardware and not software-readable")

    @property
    def active(self) -> bool:
        raise SgxAccessFault("TCS busy state is not software-readable")

    def to_bytes(self) -> bytes:
        """Serialize the software-visible TCS template (for measurement).

        CSSA and the busy flag are runtime state, zero at build time, and
        deliberately excluded — they are what migration must reconstruct.
        """
        return pack(
            {"vaddr": self.vaddr, "oentry": self.oentry, "ossa": self.ossa, "nssa": self.nssa}
        )

    def __repr__(self) -> str:
        return f"<TCS @0x{self.vaddr:x} entry={self.oentry}>"


@dataclass
class SsaFrame:
    """One State Save Area frame.

    On AEX the processor stores the interrupted execution context here.
    In this model a context is a dict from the canonical value universe
    (program counter, registers, entry name) — see :mod:`repro.serde`.
    """

    context: dict[str, Any] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        return pack(self.context)

    @staticmethod
    def from_bytes(data: bytes) -> "SsaFrame":
        return SsaFrame(unpack(data))


@dataclass(frozen=True)
class SigStruct:
    """Enclave signature structure checked by EINIT.

    Binds the expected measurement to the sealing identity of the vendor
    key that signed the image.
    """

    mrenclave: bytes
    vendor: str
    signer_modulus: int
    signature: bytes

    def signed_body(self) -> bytes:
        return pack({"mrenclave": self.mrenclave, "vendor": self.vendor})


@dataclass(frozen=True)
class TargetInfo:
    """Identifies the enclave a local-attestation REPORT is destined for."""

    mrenclave: bytes


@dataclass(frozen=True)
class Report:
    """EREPORT output: local attestation evidence.

    The MAC is computed with the *target* enclave's report key, which only
    that enclave (via EGETKEY) and the CPU can derive — so a report
    verifies only on the same processor it was created on.
    """

    mrenclave: bytes
    mrsigner: bytes
    attributes: int
    cpu_id: bytes
    report_data: bytes
    mac: bytes

    def body(self) -> bytes:
        return pack(
            {
                "mrenclave": self.mrenclave,
                "mrsigner": self.mrsigner,
                "attributes": self.attributes,
                "cpu_id": self.cpu_id,
                "report_data": self.report_data,
            }
        )


@dataclass(frozen=True)
class Quote:
    """Remote-attestation quote produced by the Quoting Enclave."""

    mrenclave: bytes
    mrsigner: bytes
    attributes: int
    platform_id: bytes
    report_data: bytes
    signature: bytes

    def signed_body(self) -> bytes:
        return pack(
            {
                "mrenclave": self.mrenclave,
                "mrsigner": self.mrsigner,
                "attributes": self.attributes,
                "platform_id": self.platform_id,
                "report_data": self.report_data,
            }
        )


@dataclass(frozen=True)
class EvictedPage:
    """EWB output: sealed page in normal memory + paging metadata.

    ``version_slot`` points at the VA slot holding the anti-replay
    version.  The ciphertext is bound to the CPU's page-encryption key:
    carrying this blob to another machine and ELDB-ing it there fails,
    which is Difference-1 of §II-B.
    """

    eid: int
    vaddr: int
    page_type: PageType
    permissions: Permissions
    ciphertext: bytes
    mac: bytes
    version: int
