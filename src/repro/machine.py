"""Physical machine composition.

A :class:`Machine` is one of the paper's two laptops: an SGX-capable CPU,
a hypervisor, and a QEMU monitor, all sharing the scenario's virtual
clock, cost model and trace.  Test scenarios build two of these plus the
attestation service and wire them over :mod:`repro.net`.
"""

from __future__ import annotations

from repro.hypervisor.kvm import Hypervisor
from repro.hypervisor.qemu import QemuMonitor
from repro.sgx.attestation import AttestationService, QuotingEnclave, provision_platform
from repro.sgx.cpu import SgxCpu
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace


class Machine:
    """One SGX-capable host."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        trace: EventTrace,
        rng: DeterministicRng,
        costs: CostModel = DEFAULT_COSTS,
        epc_pages: int = 8192,
    ) -> None:
        self.name = name
        self.clock = clock
        self.costs = costs
        self.trace = trace
        self.rng = rng.fork(name)
        self.cpu = SgxCpu(name, clock, costs, trace, self.rng.fork("cpu"), epc_pages=epc_pages)
        self.hypervisor = Hypervisor(clock, costs, trace, self.cpu)
        self.qemu = QemuMonitor(self.hypervisor)
        self.quoting_enclave: QuotingEnclave | None = None
        #: Stable storage shared by the testbed (set by ``build_testbed``);
        #: when present, enclave libraries on this machine keep write-ahead
        #: journals on it.  None for machines built outside a testbed.
        self.durable = None
        #: The testbed's invariant monitor, if one is attached.
        self.monitor = None

    def provision(self, ias: AttestationService) -> None:
        """Manufacture-time step: install a QE and register with IAS."""
        self.quoting_enclave = provision_platform(self.cpu, ias)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine {self.name}>"
