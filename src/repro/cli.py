"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``      — run the quickstart scenario end to end.
* ``attack``    — run one of the paper's attacks (consistency / fork /
  rollback / replay / tamper / crossmig) and print the outcome.
* ``vm``        — migrate a whole VM (optionally with enclaves / agent)
  and print the Figure-10 quantities.
* ``faults``    — migrate under an injected fault plan and print whether
  the protocol completed (after how many retries) or cleanly aborted;
  exits non-zero on abort or on divergence from a fault-free reference.
* ``recover``   — crash one party at a journal-record boundary, rebuild
  the migration from the write-ahead journals, and print the invariant
  verdict.
* ``trace``     — run one seeded migration and export its span trace
  (Chrome trace_event JSON, JSONL, or the phase-timeline report).
* ``metrics``   — run one seeded migration and export its metrics
  snapshot (Prometheus text or JSON); ``--require`` turns it into a CI
  gate that fails when a metric is absent or zero.
* ``explain``   — run one seeded migration and print the critical-path
  report: who to blame for every nanosecond of total time and downtime,
  plus the causal DAG's fault summary; ``--require-blame`` turns it into
  a CI gate that fails unless the named span/transfer is on a blame path.
* ``snapshot``  — run a migration (or load an existing snapshot) and
  save the comparable :class:`~repro.telemetry.diff.RunSnapshot` JSON.
* ``diff``      — compare two runs (specs or snapshot files) and rank
  what moved; ``--attribute``/``--min-attributed-share`` turn it into a
  CI gate on who gets the blame for a downtime delta.
* ``profile``   — run one seeded migration under the deterministic
  sampling profiler and emit folded stacks (flamegraph input) or JSON.
* ``inventory`` — print the system inventory (modules and their paper
  sections).

``faults`` and ``recover`` take ``--json`` to emit their report as one
machine-readable JSON object instead of prose (same exit codes).
"""

from __future__ import annotations

import argparse
import json
import sys


def _json_dumps(payload) -> str:
    from repro.telemetry.exporters import json_safe

    return json.dumps(json_safe(payload), indent=2, sort_keys=True)


def _write_or_print(text: str, out: str | None, what: str) -> None:
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {what} to {out}")
    else:
        print(text)


def _cmd_demo(_args) -> int:
    from repro import MigrationOrchestrator, build_testbed
    from repro.sdk import AtomicEntry, EnclaveProgram, HostApplication

    tb = build_testbed(seed=1)
    program = EnclaveProgram("cli/demo-v1")
    program.add_entry(
        "incr",
        AtomicEntry(
            lambda rt, args: (
                rt.store_global("n", rt.load_global("n") + int(1 if args is None else args))
                or rt.load_global("n")
            )
        ),
    )
    built = tb.builder.build("cli-demo", program, n_workers=1, global_names=("n",))
    tb.owner.register_image(built)
    app = HostApplication(tb.source, tb.source_os, built.image, [], owner=tb.owner).launch()
    print(f"built enclave, MRENCLAVE {built.image.mrenclave.hex()[:24]}…")
    print(f"counter after 3 calls: {[app.ecall_once(0, 'incr') for _ in range(3)][-1]}")
    result = MigrationOrchestrator(tb).migrate_enclave(app)
    print(f"migrated ({result.checkpoint_bytes} checkpoint bytes on the wire, sealed)")
    print(f"counter on the target: {result.target_app.ecall_once(0, 'incr', 0)}")
    print(f"virtual time elapsed: {tb.clock.now_ms:.2f} ms")
    return 0


def _cmd_attack(args) -> int:
    name = args.name
    if name == "consistency":
        from repro.attacks.consistency import run_consistency_scenario

        for checkpointer in ("naive", "two-phase"):
            outcome = run_consistency_scenario(checkpointer, malicious_scheduler=True)
            print(
                f"{checkpointer:10s} vs lying scheduler: A+B = {outcome.restored_sum} "
                f"({'CONSISTENT' if outcome.consistent else 'TORN'})"
            )
    elif name == "fork":
        from repro.attacks.fork import run_fork_scenario

        outcome = run_fork_scenario("secure")
        print(f"eve got the mail: {outcome.eve_got_mail}")
        for step in outcome.blocked_steps:
            print(f"blocked: {step}")
    elif name == "rollback":
        from repro.attacks.rollback import run_rollback_scenario

        outcome = run_rollback_scenario("migration")
        print(f"still locked after migration: {outcome.locked_after}")
        audited = run_rollback_scenario("snapshot")
        print(
            f"snapshot abuse: {audited.extra_attempts_via_snapshots} extra guesses, "
            f"{audited.resumes_logged} resumes logged, "
            f"{audited.flagged_rollbacks} flagged"
        )
    elif name == "replay":
        from repro.attacks.replay import run_replay_scenario

        outcome = run_replay_scenario()
        print(f"all replays blocked: {outcome.all_blocked} ({outcome})")
    elif name == "tamper":
        from repro.attacks.tamper import run_tamper_scenario

        for mode in ("flip", "truncate"):
            outcome = run_tamper_scenario(mode)
            print(f"{mode}: detected={outcome.detected} ({outcome.error})")
    elif name == "crossmig":
        from repro.attacks.crossmig import run_cross_migration_matrix

        outcomes = run_cross_migration_matrix(seed=args.seed)
        for outcome in outcomes:
            verdict = (
                f"refused with {outcome.refusal}" if outcome.blocked else "NOT BLOCKED"
            )
            print(
                f"{outcome.attack:17s} {verdict:33s} "
                f"state intact: {outcome.state_intact}"
            )
        if not all(o.blocked for o in outcomes):
            return 1
    else:  # pragma: no cover - argparse restricts choices
        return 1
    return 0


def _cmd_vm(args) -> int:
    from repro import build_testbed
    from repro.migration.agent import AgentService, build_agent_image
    from repro.migration.vm import VmMigrationManager, migrate_plain_vm
    from repro.sdk import HostApplication, WorkerSpec
    from repro.workloads.apps import build_app_image

    tb = build_testbed(seed=args.seed)
    if args.enclaves == 0:
        report = migrate_plain_vm(tb)
        print(
            f"total {report.total_ms:.0f} ms | downtime {report.downtime_ms:.2f} ms | "
            f"transferred {report.transferred_mb:.1f} MB | rounds {report.precopy_rounds}"
        )
        return 0
    agent = None
    if args.agent:
        agent_built = build_agent_image(tb.builder)
        tb.owner.set_agent_image(agent_built)
    apps = []
    for i in range(args.enclaves):
        built = build_app_image(tb.builder, "cr4", flavor=f"cli{i}")
        tb.owner.register_image(built)
        apps.append(
            HostApplication(
                tb.source, tb.source_os, built.image,
                workers=[WorkerSpec("process", args=1, repeat=None)],
                owner=tb.owner,
            ).launch()
        )
    if args.agent:
        agent = AgentService(tb, agent_built)
    for _ in range(30):
        tb.source_os.engine.step_round()
    result = VmMigrationManager(tb, apps).migrate(agent=agent)
    print(
        f"total {result.total_ms:.0f} ms | downtime {result.downtime_ms:.2f} ms | "
        f"transferred {result.transferred_mb:.1f} MB | "
        f"checkpointing {result.prep_ms:.2f} ms | restore {result.restore_ms:.2f} ms"
    )
    return 0


def _cmd_faults(args) -> int:
    from repro import build_testbed
    from repro.errors import MigrationAborted
    from repro.faults import FaultInjector, FaultPlan, parse_fault_spec
    from repro.migration.orchestrator import (
        FAULT_TOLERANT_RETRY,
        MigrationOrchestrator,
        RetryPolicy,
    )
    from repro.sdk import AtomicEntry, EnclaveProgram, HostApplication

    try:
        plan = parse_fault_spec(args.plan) if args.plan else FaultPlan(seed=args.seed)
    except ValueError as exc:
        raise SystemExit(f"repro faults: bad --plan: {exc}")
    plan.seed = args.seed
    try:
        retry = RetryPolicy(
            max_attempts=args.retries,
            base_backoff_ns=FAULT_TOLERANT_RETRY.base_backoff_ns,
            chunk_bytes=args.chunk_bytes or None,
            max_transfer_rounds=FAULT_TOLERANT_RETRY.max_transfer_rounds,
        )
    except ValueError as exc:
        raise SystemExit(f"repro faults: {exc}")

    # Same shape as the demo: a counter enclave with one worker.
    tb = build_testbed(seed=args.seed)
    program = EnclaveProgram("cli/faults-v1")
    program.add_entry(
        "incr",
        AtomicEntry(
            lambda rt, a: (
                rt.store_global("n", rt.load_global("n") + int(1 if a is None else a))
                or rt.load_global("n")
            )
        ),
    )
    built = tb.builder.build("cli-faults", program, n_workers=1, global_names=("n",))
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source, tb.source_os, built.image, [], owner=tb.owner
    ).launch()
    app.ecall_once(0, "incr", 7)
    if args.storage:
        from repro.sdk import control as _control

        app.library.control_call(_control.storage_put, "cli-note", "survives faults")

    report: dict = {"plan": plan.describe() or None, "seed": args.seed}
    if not args.json:
        print(f"fault plan: {plan.describe() or '(none)'}")
    baseline_ms = None
    reference_counter = None
    if not plan.empty:
        # Fault-free reference run: the degraded-mode overhead figure and
        # the divergence oracle (same program, same inputs, no faults).
        ref_tb = build_testbed(seed=args.seed)
        ref_built = ref_tb.builder.build(
            "cli-faults-ref", program, n_workers=1, global_names=("n",)
        )
        ref_tb.owner.register_image(ref_built)
        ref_app = HostApplication(
            ref_tb.source, ref_tb.source_os, ref_built.image, [], owner=ref_tb.owner
        ).launch()
        ref_app.ecall_once(0, "incr", 7)
        if args.storage:
            from repro.sdk import control as _control

            ref_app.library.control_call(
                _control.storage_put, "cli-note", "survives faults"
            )
        t0 = ref_tb.clock.now_ms
        ref_result = MigrationOrchestrator(ref_tb, retry=retry).migrate_enclave(ref_app)
        baseline_ms = ref_tb.clock.now_ms - t0
        reference_counter = ref_result.target_app.ecall_once(0, "incr", 0)

    orch = MigrationOrchestrator(tb, retry=retry, faults=FaultInjector(plan))
    t0 = tb.clock.now_ms
    try:
        result = orch.migrate_enclave(app)
    except MigrationAborted as exc:
        from repro.durability import wal as _wal

        report.update(
            outcome="aborted",
            error=str(exc),
            stats=orch.stats.as_dict(),
            faults_fired=dict(tb.trace.tally("fault")),
            storage=_wal.storage_digests(tb.durable),
            timeline=tb.telemetry.timeline().as_dict(),
        )
        if args.json:
            print(_json_dumps(report))
        else:
            print(f"outcome: ABORTED — {exc}")
            print(f"stats:   {orch.stats.as_dict()}")
            print(f"faults fired: {dict(tb.trace.tally('fault')) or '(none)'}")
        return 1
    elapsed_ms = tb.clock.now_ms - t0
    counter = result.target_app.ecall_once(0, "incr", 0)
    diverged = reference_counter is not None and counter != reference_counter
    from repro.durability import wal as _wal

    storage = _wal.storage_digests(tb.durable)
    if storage and not args.json:
        for ns, digest in sorted(storage.items()):
            print(
                f"sealed store {ns}: blob sha256 {digest['sha256']} "
                f"(version {digest['version']}, handoff {digest['handoff']}, "
                f"retired {digest['retired']})"
            )
    report.update(
        storage=storage,
        outcome="diverged" if diverged else "completed",
        attempts=result.attempts,
        counter=counter,
        reference_counter=reference_counter,
        stats=result.stats.as_dict(),
        faults_fired=dict(tb.trace.tally("fault")),
        elapsed_ms=elapsed_ms,
        baseline_ms=baseline_ms,
        timeline=tb.telemetry.timeline().as_dict(),
    )
    if args.json:
        print(_json_dumps(report))
        return 2 if diverged else 0
    print(f"outcome: COMPLETED in {result.attempts} attempt(s) — counter={counter}")
    print(f"stats:   {result.stats.as_dict()}")
    print(f"faults fired: {dict(tb.trace.tally('fault')) or '(none)'}")
    if baseline_ms is not None:
        print(
            f"degraded-mode overhead: {elapsed_ms:.2f} ms vs "
            f"{baseline_ms:.2f} ms fault-free (+{elapsed_ms - baseline_ms:.2f} ms)"
        )
    if diverged:
        print(
            f"outcome: DIVERGED — counter {counter} under faults vs "
            f"{reference_counter} in the fault-free reference"
        )
        return 2
    return 0


def _cmd_recover(args) -> int:
    from repro import build_testbed
    from repro.durability.recovery import MigrationRecovery
    from repro.durability.sweep import COUNTER_START, build_sweep_app
    from repro.errors import DurabilityError, MigrationAborted, PartyCrash
    from repro.faults import FaultInjector, parse_fault_spec
    from repro.migration.orchestrator import FAULT_TOLERANT_RETRY, MigrationOrchestrator

    try:
        plan = parse_fault_spec(args.plan)
    except ValueError as exc:
        raise SystemExit(f"repro recover: bad --plan: {exc}")
    if not plan.record_crash_faults:
        raise SystemExit(
            "repro recover: the plan needs a crash-record:PARTY:N fault to recover from"
        )
    plan.seed = args.seed
    tb = build_testbed(seed=args.seed)
    app = build_sweep_app(tb)
    if args.storage:
        from repro.sdk import control as _control

        app.library.control_call(_control.storage_put, "cli-note", "survives crashes")
    orch = MigrationOrchestrator(
        tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
    )
    out: dict = {"plan": plan.describe(), "seed": args.seed}
    if not args.json:
        print(f"fault plan: {plan.describe()}")
    try:
        orch.migrate_enclave(app)
        out.update(outcome="completed", detail="the crash point was never reached")
        if args.json:
            print(_json_dumps(out))
        else:
            print("outcome: COMPLETED (the crash point was never reached)")
        return 0
    except MigrationAborted as exc:
        out.update(outcome="aborted", error=str(exc))
        if args.json:
            print(_json_dumps(out))
        else:
            print(f"outcome: ABORTED before the crash point — {exc}")
        return 1
    except PartyCrash as exc:
        out["crash"] = str(exc)
        if not args.json:
            print(f"crash:   {exc}")

    # A crash *pair* plan (crash-record:A:N+B:M) lands its second crash
    # inside the first recovery; each drive consumes one fault, so
    # re-driving converges (same bounded loop the sweep runs).
    from repro.durability.sweep import MAX_RECOVERIES

    report = None
    recoveries = 0
    try:
        while recoveries < MAX_RECOVERIES:
            recoveries += 1
            try:
                report = MigrationRecovery(tb, app, orchestrator=orch).recover()
                break
            except PartyCrash as exc:
                out.setdefault("crashes_in_recovery", []).append(str(exc))
                if not args.json:
                    print(f"crash during recovery (re-driving): {exc}")
            except DurabilityError as exc:
                if isinstance(exc.__cause__, PartyCrash):
                    out.setdefault("crashes_in_recovery", []).append(str(exc))
                    if not args.json:
                        print(f"crash during recovery (re-driving): {exc}")
                    continue
                raise
    except DurabilityError as exc:
        out.update(outcome="refused", error=f"{type(exc).__name__}: {exc}")
        if args.json:
            print(_json_dumps(out))
        else:
            print(f"recovery REFUSED: {type(exc).__name__}: {exc}")
        return 3
    if report is None:
        out.update(
            outcome="refused",
            error=f"recovery did not converge within {MAX_RECOVERIES} drives",
        )
        if args.json:
            print(_json_dumps(out))
        else:
            print(f"recovery REFUSED: no convergence in {MAX_RECOVERIES} drives")
        return 3
    out["recoveries"] = recoveries
    if not args.json:
        print(f"recovery: {report.outcome} — {report.detail}")
        for name, kinds in sorted(report.journal_kinds.items()):
            print(f"  journal {name}: {' -> '.join(kinds) if kinds else '(empty)'}")
    survivor = report.target_app
    if survivor is None and report.live_instances:
        survivor = app
    counter = survivor.ecall_once(0, "read") if survivor is not None else None
    if not args.json:
        print(
            f"live instances: {report.live_instances}"
            + (f" (counter={counter})" if counter is not None else "")
        )

    from repro.errors import InvariantViolation

    try:
        tb.monitor.check_now()
    except InvariantViolation:
        pass
    violations = list(tb.monitor.violations)
    diverged = report.live_instances not in (0, 1) or (
        counter is not None and counter != COUNTER_START
    )
    from repro.durability import wal as _wal

    storage = _wal.storage_digests(tb.durable)
    if storage and not args.json:
        for ns, digest in sorted(storage.items()):
            print(
                f"sealed store {ns}: blob sha256 {digest['sha256']} "
                f"(version {digest['version']}, handoff {digest['handoff']}, "
                f"retired {digest['retired']})"
            )
    out.update(
        outcome=report.outcome,
        detail=report.detail,
        journal_kinds={k: list(v) for k, v in sorted(report.journal_kinds.items())},
        live_instances=report.live_instances,
        counter=counter,
        storage=storage,
        violations=violations,
        diverged=diverged,
        invariants_clean=not violations and not diverged,
    )
    if args.json:
        print(_json_dumps(out))
        return 2 if (violations or diverged) else 0
    if violations:
        for violation in violations:
            print(f"invariant VIOLATED: {violation}")
        return 2
    if diverged:
        print("invariant VIOLATED: recovered state diverged")
        return 2
    print("invariants: CLEAN (at most one live instance, state intact)")
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry.exporters import to_chrome_trace, to_jsonl
    from repro.telemetry.runs import run_seeded_migration

    tb = run_seeded_migration(seed=args.seed, vm=args.vm)
    tel = tb.telemetry
    if args.format == "chrome":
        text = json.dumps(to_chrome_trace(tel), sort_keys=True)
    elif args.format == "jsonl":
        text = to_jsonl(tel)
    elif args.format == "otlp":
        from repro.telemetry.otlp import default_resource, to_otlp_traces

        text = _json_dumps(
            to_otlp_traces(tel, resource=default_resource(tel, seed=str(args.seed)))
        )
    else:  # report
        text = _json_dumps(tel.timeline().as_dict())
    _write_or_print(text, args.out, f"{args.format} trace")
    return 0


def _cmd_metrics(args) -> int:
    from repro.telemetry.exporters import to_prometheus
    from repro.telemetry.runs import run_seeded_migration

    tb = run_seeded_migration(seed=args.seed, vm=args.vm)
    metrics = tb.trace.metrics
    if args.format == "prom":
        text = to_prometheus(metrics)
    elif args.format == "otlp":
        from repro.telemetry.otlp import default_resource, to_otlp_metrics

        tel = tb.telemetry
        text = _json_dumps(
            to_otlp_metrics(tel, resource=default_resource(tel, seed=str(args.seed)))
        )
    else:  # json
        text = _json_dumps(metrics.snapshot())
    _write_or_print(text, args.out, f"{args.format} metrics snapshot")
    failed = False
    for name in args.require:
        # A family with labels satisfies the gate if any series is nonzero.
        value = metrics.value(name, default=0) or metrics.sum_across_labels(name)
        if not value:
            print(f"repro metrics: required metric {name!r} is absent or zero")
            failed = True
    return 1 if failed else 0


def _cmd_fleet(args) -> int:
    from repro.fleet import (
        FleetConfig,
        FleetConsole,
        FleetRunner,
        blame_report,
        write_contention_bench,
        write_fleet_bench,
    )

    hosts = args.hosts
    if args.action == "blame" and not hosts:
        # Blame is about contention; default to an oversubscribed shape.
        hosts = 4
    seeds = tuple(s.strip() for s in str(args.seeds).split(",") if s.strip())
    try:
        config = FleetConfig(
            n=args.n,
            seeds=tuple(int(s) if s.isdigit() else s for s in seeds) or (1,),
            max_inflight=args.max_inflight,
            hops=args.hops,
            fault_every=args.fault_every,
            fault_spec=args.fault_plan,
            hosts=hosts,
            epc_per_host=args.epc_per_host,
            bw_per_host=args.bw_per_host,
        )
    except ValueError as exc:
        raise SystemExit(f"repro fleet: {exc}")
    console = FleetConsole(
        n=config.n,
        stream=sys.stdout if args.watch else None,
        frame_every=args.frame_every if args.watch else 0,
    )
    report = FleetRunner(config, on_record=console.on_record).run()
    snapshot = console.snapshot(report)
    if args.console_out:
        with open(args.console_out, "w", encoding="utf-8") as fh:
            fh.write(snapshot)
        print(f"wrote console snapshot to {args.console_out}", file=sys.stderr)
    if args.otlp_out:
        import os as _os

        _os.makedirs(args.otlp_out, exist_ok=True)
        metrics_path = _os.path.join(args.otlp_out, "fleet-metrics.otlp.json")
        with open(metrics_path, "w", encoding="utf-8") as fh:
            fh.write(_json_dumps(report.otlp_metrics()) + "\n")
        if report.otlp_traces_sample is not None:
            traces_path = _os.path.join(args.otlp_out, "sample-trace.otlp.json")
            with open(traces_path, "w", encoding="utf-8") as fh:
                fh.write(_json_dumps(report.otlp_traces_sample) + "\n")
        print(f"wrote OTLP artifacts to {args.otlp_out}", file=sys.stderr)
    if args.heatmap_out:
        with open(args.heatmap_out, "w", encoding="utf-8") as fh:
            fh.write(console.heatmap())
        print(f"wrote host heatmap to {args.heatmap_out}", file=sys.stderr)
    bench_path = write_fleet_bench(report, bench_dir=args.bench_dir or None)
    if bench_path:
        print(f"wrote {report.config.series_key()} to {bench_path}", file=sys.stderr)
    contention_path = write_contention_bench(report, bench_dir=args.bench_dir or None)
    if contention_path:
        print(
            f"wrote contention series {report.config.series_key()} to"
            f" {contention_path}",
            file=sys.stderr,
        )
    if args.action == "blame":
        blame = blame_report(report, factor=args.blame_factor)
        text = _json_dumps(blame.as_dict()) + "\n" if args.json else blame.render_text()
        if args.blame_out:
            with open(args.blame_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote blame report to {args.blame_out}", file=sys.stderr)
        else:
            print(text, end="")
        return 1 if report.failed else 0
    if args.json:
        print(_json_dumps(report.as_dict()))
    else:
        print(snapshot, end="")
    return 1 if report.failed else 0


def _cmd_explain(args) -> int:
    from repro.telemetry.causal import build_dag
    from repro.telemetry.criticalpath import explain_migration
    from repro.telemetry.exporters import to_chrome_trace
    from repro.telemetry.runs import run_seeded_migration

    tb = run_seeded_migration(seed=args.seed)
    report = explain_migration(tb.telemetry, tb.network)
    if args.format == "json":
        text = _json_dumps(report.as_dict())
    elif args.format == "chrome":
        text = json.dumps(
            to_chrome_trace(tb.telemetry, network=tb.network, critical=report),
            sort_keys=True,
        )
    elif args.format == "dot":
        text = build_dag(tb.telemetry, tb.network).to_dot()
    else:  # text
        text = report.render_text()
    _write_or_print(text, args.out, f"{args.format} explain report")
    unmatched = [q for q in args.require_blame if not report.blames(q)]
    for query in unmatched:
        print(f"repro explain: required blame {query!r} is not on any blame path")
    return 1 if unmatched else 0


def _cmd_snapshot(args) -> int:
    from repro.telemetry.diff import resolve_run

    snapshot = resolve_run(args.run)
    if args.out:
        snapshot.save(args.out)
        print(f"wrote run snapshot to {args.out}")
    else:
        print(_json_dumps(snapshot.as_dict()))
    return 0


def _cmd_diff(args) -> int:
    from repro.telemetry.diff import diff_runs, resolve_run

    base = resolve_run(args.base)
    fresh = resolve_run(args.fresh)
    diff = diff_runs(base, fresh)
    if args.format == "json":
        text = _json_dumps(diff.as_dict())
    elif args.format == "markdown":
        text = diff.render_markdown()
    else:  # text
        text = diff.render_text()
    _write_or_print(text, args.out, f"{args.format} run diff")
    if args.min_attributed_share is not None:
        share = diff.attributed_share(args.attribute or "")
        if share < args.min_attributed_share:
            print(
                f"repro diff: {args.attribute!r} explains {share:.1f}% of the "
                f"downtime delta, below the required "
                f"{args.min_attributed_share:.1f}%"
            )
            return 1
    return 0


def _cmd_profile(args) -> int:
    from repro.telemetry.runs import run_seeded_migration

    tb = run_seeded_migration(
        seed=args.seed, vm=args.vm, profile_interval_ns=args.interval_ns
    )
    profile = tb.telemetry.profiler.profile()
    if args.format == "json":
        text = _json_dumps(profile.as_dict())
    else:  # folded
        text = profile.folded()
    _write_or_print(text, args.out, f"{args.format} profile")
    return 0


def _cmd_inventory(_args) -> int:
    rows = [
        ("repro.sim", "virtual clock, cost model, VCPU scheduler", "—"),
        ("repro.crypto", "RC4/DES/AES/DH/RSA/HKDF, AE envelope", "§IV, §V-B"),
        ("repro.sgx", "EPC/EPCM, MEE, instruction set, attestation", "§II-A"),
        ("repro.sgx.sgx2", "EDMM: EAUG/EACCEPT/EMODPR/EMODPE", "§IV-B (v2 note)"),
        ("repro.sgx.proposed", "EPUTKEY/EMIGRATE/ESWPOUT/… extension ISA", "§VII-B"),
        ("repro.hypervisor", "EPT, VMCS, vEPC overcommit, QEMU pre-copy", "§VI-A"),
        ("repro.guestos", "scheduler (honest+malicious), SGX driver", "§IV-A, §VI-B"),
        ("repro.sdk", "builder, runtime, control thread, library, owner", "§III, §VI-C"),
        ("repro.migration", "orchestrator, agent, snapshots, VM migration", "§III-§VI"),
        ("repro.attacks", "consistency, fork, rollback, replay, tamper, crossmig", "§IV-A, §V-A, §VII-A"),
        ("repro.workloads", "nbench, crypto apps, bank, mail, auth, memcached", "§VIII"),
    ]
    width = max(len(r[0]) for r in rows)
    for module, what, section in rows:
        print(f"{module.ljust(width)}  {what}  [{section}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to a subcommand; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure Live Migration of SGX Enclaves on Untrusted Cloud (DSN'17) — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run the quickstart scenario").set_defaults(fn=_cmd_demo)
    attack = sub.add_parser("attack", help="run one of the paper's attacks")
    attack.add_argument(
        "name",
        choices=("consistency", "fork", "rollback", "replay", "tamper", "crossmig"),
    )
    attack.add_argument(
        "--seed",
        type=int,
        default=40,
        help="seed for the cross-migration matrix (ignored by other attacks)",
    )
    attack.set_defaults(fn=_cmd_attack)
    vm = sub.add_parser("vm", help="migrate a whole VM")
    vm.add_argument("--enclaves", type=int, default=4)
    vm.add_argument("--agent", action="store_true", help="use the §VI-D agent enclave")
    vm.add_argument("--seed", default="cli")
    vm.set_defaults(fn=_cmd_vm)
    faults = sub.add_parser("faults", help="migrate under an injected fault plan")
    faults.add_argument(
        "--plan",
        default="",
        help=(
            "comma-separated faults, e.g. "
            "'drop:kmigrate,corrupt:checkpoint-chunk:2,crash:target:restore,"
            "partition:20'"
        ),
    )
    faults.add_argument("--seed", type=int, default=7, help="fault plan RNG seed")
    faults.add_argument("--retries", type=int, default=5, help="protocol attempts")
    faults.add_argument(
        "--chunk-bytes", type=int, default=16 * 1024,
        help="checkpoint chunk size (0 = unchunked seed protocol)",
    )
    faults.add_argument(
        "--storage",
        action="store_true",
        help="seed the enclave with sealed storage so the handoff runs too",
    )
    faults.add_argument(
        "--json", action="store_true", help="emit one JSON report instead of prose"
    )
    faults.set_defaults(fn=_cmd_faults)
    recover = sub.add_parser(
        "recover", help="crash a migration party mid-protocol and recover it"
    )
    recover.add_argument(
        "--plan",
        default="crash-record:orchestrator:5",
        help=(
            "fault spec with at least one crash-record:PARTY:N entry "
            "(PARTY in source/target/orchestrator/agent)"
        ),
    )
    recover.add_argument("--seed", type=int, default=7, help="testbed / plan seed")
    recover.add_argument(
        "--storage",
        action="store_true",
        help="seed the enclave with sealed storage so the handoff runs too",
    )
    recover.add_argument(
        "--json", action="store_true", help="emit one JSON report instead of prose"
    )
    recover.set_defaults(fn=_cmd_recover)
    trace = sub.add_parser(
        "trace", help="run one seeded migration and export its span trace"
    )
    trace.add_argument("--seed", default=1, help="testbed seed")
    trace.add_argument(
        "--vm", action="store_true", help="trace a whole-VM migration instead"
    )
    trace.add_argument(
        "--format", choices=("chrome", "jsonl", "otlp", "report"), default="chrome",
        help=(
            "chrome trace_event JSON, JSONL dump, OTLP/JSON traces, or the "
            "phase-timeline report"
        ),
    )
    trace.add_argument("--out", default="", help="write to a file instead of stdout")
    trace.set_defaults(fn=_cmd_trace)
    metrics = sub.add_parser(
        "metrics", help="run one seeded migration and export its metrics"
    )
    metrics.add_argument("--seed", default=1, help="testbed seed")
    metrics.add_argument(
        "--vm", action="store_true", help="measure a whole-VM migration instead"
    )
    metrics.add_argument(
        "--format", choices=("prom", "json", "otlp"), default="prom",
        help="Prometheus text exposition, the JSON snapshot, or OTLP/JSON",
    )
    metrics.add_argument("--out", default="", help="write to a file instead of stdout")
    metrics.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="exit non-zero unless this metric exists and is non-zero (repeatable)",
    )
    metrics.set_defaults(fn=_cmd_metrics)
    fleet = sub.add_parser(
        "fleet",
        help="run N seeded migrations under the fleet SLO plane",
    )
    fleet.add_argument(
        "action", nargs="?", choices=("run", "blame"), default="run",
        help="'run' prints the console snapshot; 'blame' runs the fleet "
        "and prints the ranked straggler contention-blame report "
        "(defaults --hosts to 4 when unset)",
    )
    fleet.add_argument("--n", type=int, default=16, help="number of migrations")
    fleet.add_argument(
        "--seeds", default="1",
        help="comma-separated base seeds, cycled across migrations",
    )
    fleet.add_argument(
        "--max-inflight", type=int, default=8, dest="max_inflight",
        help="concurrent admission slots on the fleet timeline",
    )
    fleet.add_argument(
        "--hops", type=int, default=1,
        help="hops per migration (>1 drives an N-hop chain)",
    )
    fleet.add_argument(
        "--fault-every", type=int, default=0, dest="fault_every", metavar="K",
        help="inject the fault plan into every K-th migration (0 = never)",
    )
    fleet.add_argument(
        "--fault-plan", default="delay:checkpoint:1", dest="fault_plan",
        help="fault spec for the --fault-every cadence",
    )
    fleet.add_argument(
        "--hosts", type=int, default=0,
        help="per-host contention model: number of simulated hosts "
        "(0 = plain slot timeline, no contention)",
    )
    fleet.add_argument(
        "--epc-per-host", type=int, default=32, dest="epc_per_host",
        metavar="PAGES", help="EPC capacity per host in 4 KiB pages",
    )
    fleet.add_argument(
        "--bw-per-host", type=int, default=1024 * 1024, dest="bw_per_host",
        metavar="BYTES_PER_SEC", help="NIC bandwidth share per host",
    )
    fleet.add_argument(
        "--blame-factor", type=float, default=1.5, dest="blame_factor",
        help="straggler threshold: wall time above this multiple of the "
        "fleet median (blame action)",
    )
    fleet.add_argument(
        "--blame-out", default="", dest="blame_out",
        help="write the blame report to a file (blame action)",
    )
    fleet.add_argument(
        "--heatmap-out", default="", dest="heatmap_out",
        help="write the host-utilization heatmap to a file (needs --hosts)",
    )
    fleet.add_argument(
        "--watch", action="store_true",
        help="print live console frames as migrations complete",
    )
    fleet.add_argument(
        "--frame-every", type=int, default=8, dest="frame_every",
        help="with --watch, emit a frame every this-many completions",
    )
    fleet.add_argument(
        "--console-out", default="", dest="console_out",
        help="write the final console snapshot to a file",
    )
    fleet.add_argument(
        "--otlp-out", default="", dest="otlp_out",
        help="directory for OTLP artifacts (fleet metrics + sample trace)",
    )
    fleet.add_argument(
        "--bench-dir", default="", dest="bench_dir",
        help="merge this run's series into BENCH_fleet.json here "
        "(default: $REPRO_BENCH_DIR)",
    )
    fleet.add_argument(
        "--json", action="store_true", help="print the full fleet report as JSON"
    )
    fleet.set_defaults(fn=_cmd_fleet)
    explain = sub.add_parser(
        "explain", help="run one seeded migration and print its critical path"
    )
    explain.add_argument("--seed", default=1, help="testbed seed")
    explain.add_argument(
        "--format", choices=("text", "json", "chrome", "dot"), default="text",
        help=(
            "ranked text report, JSON report, Chrome trace with overlays, "
            "or the causal DAG as Graphviz source"
        ),
    )
    explain.add_argument("--out", default="", help="write to a file instead of stdout")
    explain.add_argument(
        "--require-blame", action="append", default=[], metavar="NAME",
        dest="require_blame",
        help=(
            "exit non-zero unless NAME matches a blamed span/transfer or one "
            "of its span ancestors (substring match; repeatable)"
        ),
    )
    explain.set_defaults(fn=_cmd_explain)
    snapshot = sub.add_parser(
        "snapshot", help="run a migration (or load one) and save its run snapshot"
    )
    snapshot.add_argument(
        "run",
        help=(
            "a run spec ('seed=1', 'seed=1,vm', 'seed=1,journal-cost-ns=524000', "
            "optionally 'profile-ns=N') or a path to an existing snapshot"
        ),
    )
    snapshot.add_argument("--out", default="", help="write to a file instead of stdout")
    snapshot.set_defaults(fn=_cmd_snapshot)
    diff = sub.add_parser(
        "diff", help="compare two runs and attribute the downtime delta"
    )
    diff.add_argument("base", help="baseline run: a run spec or a snapshot path")
    diff.add_argument("fresh", help="fresh run: a run spec or a snapshot path")
    diff.add_argument(
        "--format", choices=("text", "json", "markdown"), default="text",
        help="ranked text report, JSON report, or a markdown summary table",
    )
    diff.add_argument("--out", default="", help="write to a file instead of stdout")
    diff.add_argument(
        "--attribute", default="", metavar="NAME",
        help="blame unit (substring) for the --min-attributed-share gate",
    )
    diff.add_argument(
        "--min-attributed-share", type=float, default=None, metavar="PCT",
        help=(
            "exit non-zero unless --attribute explains at least PCT%% of the "
            "downtime delta"
        ),
    )
    diff.set_defaults(fn=_cmd_diff)
    profile = sub.add_parser(
        "profile", help="run one seeded migration under the sampling profiler"
    )
    profile.add_argument("--seed", default=1, help="testbed seed")
    profile.add_argument(
        "--vm", action="store_true", help="profile a whole-VM migration instead"
    )
    profile.add_argument(
        "--interval-ns", type=int, default=10_000,
        help="virtual-time sampling interval in nanoseconds",
    )
    profile.add_argument(
        "--format", choices=("folded", "json"), default="folded",
        help="collapsed folded stacks (flamegraph.pl input) or JSON",
    )
    profile.add_argument("--out", default="", help="write to a file instead of stdout")
    profile.set_defaults(fn=_cmd_profile)
    sub.add_parser("inventory", help="print the system inventory").set_defaults(
        fn=_cmd_inventory
    )
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
