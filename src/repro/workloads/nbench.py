"""The nbench 2.2.3 kernels, reduced, as enclave entries (Figure 9(a)).

Each kernel is a real (if size-reduced) implementation of the classic
BYTEmark algorithm, run over *enclave memory*: inputs are read from heap
pages through the runtime and results written back, so a kernel's memory
footprint translates into genuine EPC traffic.  Kernels with working sets
larger than the virtual EPC (String Sort, by far the biggest — exactly
the case the paper calls out) thrash the driver's LRU eviction and pay
page-fault costs, which is what produces Figure 9(a)'s shape.

"the overhead caused by SGX is not obvious if the workload is computation
intensive and has small memory footprint.  Conversely, if a workload in
enclave requires more safe memory, the overhead introduced by SGX
significantly increases.  String Sort is such an example." (§VIII-A)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.sdk.builder import BuiltImage, SdkBuilder
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sdk.runtime import EnclaveRuntime
from repro.sgx.structures import PAGE_SIZE
from repro.sim.rng import DeterministicRng


# ---------------------------------------------------------------------------
# Pure algorithm cores (shared by the native and in-enclave paths)
# ---------------------------------------------------------------------------

def numeric_sort_core(seed: int, n: int = 1024) -> int:
    rng = DeterministicRng(seed)
    data = [rng.randint(0, 1 << 30) for _ in range(n)]
    heapq.heapify(data)
    out = [heapq.heappop(data) for _ in range(n)]
    assert all(a <= b for a, b in zip(out, out[1:]))
    return out[n // 2]


def string_sort_core(seed: int, n: int = 512) -> int:
    rng = DeterministicRng(seed)
    strings = ["".join(chr(97 + rng.randint(0, 25)) for _ in range(rng.randint(4, 24))) for _ in range(n)]
    strings.sort()
    return sum(len(s) for s in strings[: n // 4])


def bitfield_core(seed: int, bits: int = 1 << 14) -> int:
    rng = DeterministicRng(seed)
    field = bytearray(bits // 8)
    for _ in range(200):
        start = rng.randint(0, bits - 64)
        length = rng.randint(1, 64)
        op = rng.randint(0, 2)
        for bit in range(start, start + length):
            byte, mask = bit // 8, 1 << (bit % 8)
            if op == 0:
                field[byte] |= mask
            elif op == 1:
                field[byte] &= ~mask
            else:
                field[byte] ^= mask
    return sum(bin(b).count("1") for b in field)


def fp_emulation_core(seed: int, n: int = 300) -> int:
    """Software floating point on (sign, exponent, mantissa) triples."""
    rng = DeterministicRng(seed)

    def norm(sign: int, exp: int, man: int) -> tuple[int, int, int]:
        if man == 0:
            return 0, 0, 0
        while man >= 1 << 24:
            man >>= 1
            exp += 1
        while man < 1 << 23:
            man <<= 1
            exp -= 1
        return sign, exp, man

    def fmul(a, b):
        sign = a[0] ^ b[0]
        return norm(sign, a[1] + b[1] - 23, (a[2] * b[2]) >> 23)

    def fadd(a, b):
        if a[1] < b[1]:
            a, b = b, a
        man_b = b[2] >> min(a[1] - b[1], 40)
        if a[0] == b[0]:
            return norm(a[0], a[1], a[2] + man_b)
        if a[2] >= man_b:
            return norm(a[0], a[1], a[2] - man_b)
        return norm(b[0], a[1], man_b - a[2])

    acc = (0, 0, 1 << 23)
    for _ in range(n):
        x = norm(rng.randint(0, 1), rng.randint(-8, 8), rng.randint(1 << 23, (1 << 24) - 1))
        acc = fadd(fmul(acc, (0, -1, 3 << 22)), x)
    return acc[1] & 0xFFFF


def assignment_core(seed: int, n: int = 24) -> int:
    """Greedy task-assignment over an n x n cost matrix."""
    rng = DeterministicRng(seed)
    cost = [[rng.randint(1, 1000) for _ in range(n)] for _ in range(n)]
    taken_cols: set[int] = set()
    total = 0
    order = sorted(range(n), key=lambda r: min(cost[r]))
    for row in order:
        best = min(
            (c for c in range(n) if c not in taken_cols), key=lambda c: cost[row][c]
        )
        taken_cols.add(best)
        total += cost[row][best]
    return total


def _idea_mul(a: int, b: int) -> int:
    """Multiplication modulo 2^16 + 1 (0 represents 2^16)."""
    if a == 0:
        a = 1 << 16
    if b == 0:
        b = 1 << 16
    return (a * b) % ((1 << 16) + 1) & 0xFFFF


def idea_core(seed: int, n_blocks: int = 64) -> int:
    """Real IDEA encryption over ``n_blocks`` 64-bit blocks."""
    rng = DeterministicRng(seed)
    key = rng.getrandbits(128)
    # Key schedule: 52 subkeys from rotations of the 128-bit key.
    subkeys = []
    k = key
    while len(subkeys) < 52:
        for i in range(8):
            if len(subkeys) == 52:
                break
            subkeys.append((k >> (112 - 16 * i)) & 0xFFFF)
        k = ((k << 25) | (k >> 103)) & ((1 << 128) - 1)
    checksum = 0
    for block in range(n_blocks):
        x1, x2, x3, x4 = (rng.getrandbits(16) for _ in range(4))
        for round_no in range(8):
            sk = subkeys[6 * round_no : 6 * round_no + 6]
            x1 = _idea_mul(x1, sk[0])
            x2 = (x2 + sk[1]) & 0xFFFF
            x3 = (x3 + sk[2]) & 0xFFFF
            x4 = _idea_mul(x4, sk[3])
            t0 = _idea_mul(x1 ^ x3, sk[4])
            t1 = _idea_mul(((x2 ^ x4) + t0) & 0xFFFF, sk[5])
            t2 = (t0 + t1) & 0xFFFF
            x1, x2, x3, x4 = x1 ^ t1, x3 ^ t1, x2 ^ t2, x4 ^ t2
            if round_no != 7:
                x2, x3 = x3, x2
        sk = subkeys[48:52]
        out = (
            _idea_mul(x1, sk[0]),
            (x2 + sk[1]) & 0xFFFF,
            (x3 + sk[2]) & 0xFFFF,
            _idea_mul(x4, sk[3]),
        )
        checksum ^= out[0] ^ out[1] ^ out[2] ^ out[3]
    return checksum


def huffman_core(seed: int, n: int = 2048) -> int:
    rng = DeterministicRng(seed)
    text = bytes(rng.randint(97, 97 + 15) for _ in range(n))
    freq: dict[int, int] = {}
    for byte in text:
        freq[byte] = freq.get(byte, 0) + 1
    heap = [(count, symbol, None) for symbol, count in freq.items()]
    heapq.heapify(heap)
    counter = 256
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        heapq.heappush(heap, (a[0] + b[0], counter, (a, b)))
        counter += 1
    codes: dict[int, str] = {}

    def walk(node, prefix: str) -> None:
        if node[2] is None:
            codes[node[1]] = prefix or "0"
            return
        walk(node[2][0], prefix + "0")
        walk(node[2][1], prefix + "1")

    walk(heap[0], "")
    encoded = "".join(codes[b] for b in text)
    # Decode and verify the round trip.
    reverse = {v: k for k, v in codes.items()}
    decoded = bytearray()
    buffer = ""
    for bit in encoded:
        buffer += bit
        if buffer in reverse:
            decoded.append(reverse[buffer])
            buffer = ""
    assert bytes(decoded) == text
    return len(encoded)


def neural_net_core(seed: int, epochs: int = 12) -> int:
    """Fixed-point 8-8-4 MLP, forward + backprop (integer arithmetic)."""
    rng = DeterministicRng(seed)
    scale = 1 << 10

    def rand_matrix(rows: int, cols: int) -> list[list[int]]:
        return [[rng.randint(-scale, scale) for _ in range(cols)] for _ in range(rows)]

    w1, w2 = rand_matrix(8, 8), rand_matrix(8, 4)
    samples = [([rng.randint(0, scale) for _ in range(8)], rng.randint(0, 3)) for _ in range(16)]

    def act(x: int) -> int:  # clamped ReLU
        return min(max(x, 0), 4 * scale)

    for _ in range(epochs):
        for inputs, label in samples:
            hidden = [act(sum(inputs[i] * w1[i][j] for i in range(8)) // scale) for j in range(8)]
            outputs = [sum(hidden[j] * w2[j][k] for j in range(8)) // scale for k in range(4)]
            target = [scale if k == label else 0 for k in range(4)]
            errors = [target[k] - outputs[k] for k in range(4)]
            for j in range(8):
                for k in range(4):
                    w2[j][k] += (hidden[j] * errors[k]) // (scale * 64)
            for i in range(8):
                for j in range(8):
                    back = sum(errors[k] * w2[j][k] for k in range(4)) // scale
                    w1[i][j] += (inputs[i] * back) // (scale * 256)
    return sum(sum(row) for row in w2) & 0xFFFF


def lu_decomposition_core(seed: int, n: int = 16) -> int:
    """Fixed-point LU with partial pivoting."""
    rng = DeterministicRng(seed)
    scale = 1 << 16
    matrix = [[rng.randint(1, 100) * scale for _ in range(n)] for _ in range(n)]
    sign = 1
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(matrix[r][col]))
        if pivot != col:
            matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
            sign = -sign
        if matrix[col][col] == 0:
            continue
        for row in range(col + 1, n):
            factor = (matrix[row][col] * scale) // matrix[col][col]
            for k in range(col, n):
                matrix[row][k] -= (factor * matrix[col][k]) // scale
    det_log = sum(abs(matrix[i][i]).bit_length() for i in range(n))
    return (sign * det_log) & 0xFFFF


# ---------------------------------------------------------------------------
# Kernel descriptors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NbenchKernel:
    """One Figure 9(a) bar: an algorithm plus its memory behaviour."""

    name: str
    core: Callable[[int], int]
    #: Heap pages the in-enclave variant sweeps per run.
    footprint_pages: int
    #: Whether page visits are randomized (defeats LRU) or sequential.
    random_access: bool
    #: Modelled compute time per run (calibrated to nbench relative rates).
    compute_cost_ns: int


NBENCH_KERNELS: dict[str, NbenchKernel] = {
    "numeric_sort": NbenchKernel("numeric_sort", numeric_sort_core, 8, False, 800_000),
    "string_sort": NbenchKernel("string_sort", string_sort_core, 160, True, 900_000),
    "bitfield": NbenchKernel("bitfield", bitfield_core, 4, False, 500_000),
    "fp_emulation": NbenchKernel("fp_emulation", fp_emulation_core, 4, False, 1_200_000),
    "assignment": NbenchKernel("assignment", assignment_core, 24, False, 1_000_000),
    "idea": NbenchKernel("idea", idea_core, 4, False, 700_000),
    "huffman": NbenchKernel("huffman", huffman_core, 8, False, 600_000),
    "neural_net": NbenchKernel("neural_net", neural_net_core, 32, True, 1_500_000),
    "lu_decomposition": NbenchKernel("lu_decomposition", lu_decomposition_core, 12, False, 1_100_000),
}


def _make_entry(kernel: NbenchKernel) -> AtomicEntry:
    def run(rt: EnclaveRuntime, args) -> int:
        seed = int(args or 0)
        # Memory phase: sweep the kernel's working set in enclave memory.
        # Random-access kernels visit pages in a shuffled order, which is
        # what defeats the driver's LRU when the set exceeds the vEPC.
        base = rt.layout.heap_base
        order = list(range(kernel.footprint_pages))
        if kernel.random_access:
            sweep_rng = DeterministicRng(seed ^ 0x5EED)
            sweep_rng.shuffle(order)
        checksum = 0
        for page in order:
            vaddr = base + page * PAGE_SIZE
            word = rt.load_u64(vaddr)
            rt.store_u64(vaddr, (word + seed + page) & ((1 << 64) - 1))
            checksum ^= word
        # Compute phase: the real algorithm.
        result = kernel.core(seed)
        rt.store_u64(base, result & ((1 << 64) - 1))
        return result ^ (checksum & 0)

    return AtomicEntry(run, cost_ns=kernel.compute_cost_ns)


def build_nbench_image(
    builder: SdkBuilder, kernel_name: str, sdk_flavor: str = "ours"
) -> BuiltImage:
    """Build a single-kernel nbench enclave image.

    ``sdk_flavor`` is only part of the code id so "Intel SDK" and "our
    SDK" measure as different images in Figure 9(a); the mechanics are
    identical (the paper's two SDKs also perform nearly identically).
    """
    kernel = NBENCH_KERNELS[kernel_name]
    program = EnclaveProgram(f"repro/nbench-{kernel_name}-{sdk_flavor}-v1")
    program.add_entry("run", _make_entry(kernel))
    return builder.build(
        f"nbench-{kernel_name}-{sdk_flavor}",
        program,
        n_workers=1,
        heap_pages=kernel.footprint_pages,
    )


def native_run(kernel_name: str, clock, seed: int = 7) -> int:
    """The no-enclave baseline: same algorithm, plain memory."""
    kernel = NBENCH_KERNELS[kernel_name]
    result = kernel.core(seed)
    clock.advance(kernel.compute_cost_ns + kernel.footprint_pages * 200)
    return result
