"""Security-minded applications ported into enclaves (Figure 9(b)).

"we also choose some real world applications which have security
requirements, change them to applications with enclave, and evaluate
their performance with and without migration support" (§VIII-A).

Each application gets one enclave entry doing the real computation with
this repository's own algorithm implementations:

* ``des``     — DES-CBC encryption of an in-enclave buffer.
* ``cr4``     — RC4 keystream over an in-enclave buffer.
* ``mcrypt``  — AES-128-CBC (the mcrypt library's workhorse).
* ``gnupg``   — SHA-256 digest + RSA sign/verify.
* ``libjpeg`` — 8x8 integer DCT + quantization over image blocks.
* ``libzip``  — LZ77-style compression with round-trip verification.
"""

from __future__ import annotations

import math

from repro.crypto.aes import Aes128
from repro.crypto.des import Des
from repro.crypto.hashes import sha256
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.rc4 import Rc4
from repro.crypto.rsa import generate_rsa_keypair
from repro.sdk.builder import BuiltImage, SdkBuilder
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sdk.runtime import EnclaveRuntime
from repro.sgx.structures import PAGE_SIZE
from repro.sim.rng import DeterministicRng

APP_NAMES = ("des", "cr4", "mcrypt", "gnupg", "libjpeg", "libzip")

_BUFFER_BYTES = 2 * PAGE_SIZE


def _load_buffer(rt: EnclaveRuntime, seed: int) -> bytes:
    """Materialize a deterministic input buffer in enclave memory."""
    data = DeterministicRng(seed).bytes(_BUFFER_BYTES)
    rt.write(rt.layout.heap_base, data)
    return rt.read(rt.layout.heap_base, _BUFFER_BYTES)


def _store_result(rt: EnclaveRuntime, blob: bytes) -> None:
    rt.write(rt.layout.heap_base, blob[: rt.layout.heap_bytes])


# ---------------------------------------------------------------- entries
def _des_entry(rt: EnclaveRuntime, args) -> int:
    data = _load_buffer(rt, int(args or 1))
    cipher = Des(sha256(b"des-key")[:8])
    ciphertext = cbc_encrypt(cipher, b"\x00" * 8, data[:1024])
    assert cbc_decrypt(cipher, b"\x00" * 8, ciphertext) == data[:1024]
    _store_result(rt, ciphertext)
    return len(ciphertext)


def _cr4_entry(rt: EnclaveRuntime, args) -> int:
    data = _load_buffer(rt, int(args or 1))
    ciphertext = Rc4(b"cr4-key").process(data)
    assert Rc4(b"cr4-key").process(ciphertext) == data
    _store_result(rt, ciphertext)
    return len(ciphertext)


def _mcrypt_entry(rt: EnclaveRuntime, args) -> int:
    data = _load_buffer(rt, int(args or 1))
    cipher = Aes128(sha256(b"mcrypt-key")[:16])
    ciphertext = cbc_encrypt(cipher, b"\x01" * 16, data[:2048])
    assert cbc_decrypt(cipher, b"\x01" * 16, ciphertext) == data[:2048]
    _store_result(rt, ciphertext)
    return len(ciphertext)


_GNUPG_KEY = None


def _gnupg_entry(rt: EnclaveRuntime, args) -> int:
    global _GNUPG_KEY
    if _GNUPG_KEY is None:
        _GNUPG_KEY = generate_rsa_keypair(DeterministicRng("gnupg-key"), bits=512)
    data = _load_buffer(rt, int(args or 1))
    signature = _GNUPG_KEY.sign(data)
    _GNUPG_KEY.public.verify(data, signature)
    _store_result(rt, signature)
    return len(signature)


_DCT_SCALE = 1 << 10
_DCT_COS = [
    [int(_DCT_SCALE * math.cos((2 * x + 1) * u * math.pi / 16)) for x in range(8)]
    for u in range(8)
]


def _dct_8x8(block: list[int]) -> list[int]:
    """Integer 8x8 DCT-II (separable, fixed point)."""
    scale, cos = _DCT_SCALE, _DCT_COS
    temp = [0] * 64
    for u in range(8):
        for x in range(8):
            temp[u * 8 + x] = sum(block[y * 8 + x] * cos[u][y] for y in range(8)) // scale
    out = [0] * 64
    for u in range(8):
        for v in range(8):
            out[u * 8 + v] = sum(temp[u * 8 + x] * cos[v][x] for x in range(8)) // scale
    return out


_QUANT = [16, 11, 10, 16, 24, 40, 51, 61] * 8


def _libjpeg_entry(rt: EnclaveRuntime, args) -> int:
    data = _load_buffer(rt, int(args or 1))
    checksum = 0
    for block_no in range(8):
        block = [b - 128 for b in data[block_no * 64 : block_no * 64 + 64]]
        coefficients = _dct_8x8(block)
        quantized = [c // q for c, q in zip(coefficients, _QUANT)]
        checksum ^= sum(abs(q) for q in quantized) & 0xFFFF
    rt.store_u64(rt.layout.heap_base, checksum)
    return checksum


def lz77_compress(data: bytes, window: int = 255) -> bytes:
    """Tiny LZ77: (flag, offset, length, literal) tokens."""
    out = bytearray()
    i = 0
    while i < len(data):
        best_len, best_off = 0, 0
        start = max(0, i - window)
        for j in range(start, i):
            length = 0
            while (
                length < 255
                and i + length < len(data)
                and data[j + length] == data[i + length]
                and j + length < i
            ):
                length += 1
            if length > best_len:
                best_len, best_off = length, i - j
        if best_len >= 4:
            out += bytes((1, best_off, best_len))
            i += best_len
        else:
            out += bytes((0, data[i]))
            i += 1
    return bytes(out)


def lz77_decompress(blob: bytes) -> bytes:
    out = bytearray()
    i = 0
    while i < len(blob):
        if blob[i] == 0:
            out.append(blob[i + 1])
            i += 2
        else:
            offset, length = blob[i + 1], blob[i + 2]
            for _ in range(length):
                out.append(out[-offset])
            i += 3
    return bytes(out)


def _libzip_entry(rt: EnclaveRuntime, args) -> int:
    # Compressible input: repeated phrases with noise.
    rng = DeterministicRng(int(args or 1))
    phrase = b"the quick brown enclave jumps over the lazy hypervisor "
    data = bytearray()
    while len(data) < 2048:
        data += phrase
        data.append(rng.randint(0, 255))
    data = bytes(data[:2048])
    rt.write(rt.layout.heap_base, data)
    compressed = lz77_compress(rt.read(rt.layout.heap_base, len(data)))
    assert lz77_decompress(compressed) == data
    _store_result(rt, compressed)
    return len(compressed)


_ENTRIES = {
    "des": (_des_entry, 900_000),
    "cr4": (_cr4_entry, 300_000),
    "mcrypt": (_mcrypt_entry, 500_000),
    "gnupg": (_gnupg_entry, 1_600_000),
    "libjpeg": (_libjpeg_entry, 700_000),
    "libzip": (_libzip_entry, 800_000),
}


def build_app_image(builder: SdkBuilder, app_name: str, flavor: str = "default") -> BuiltImage:
    """Build the enclave image for one Figure 9(b) application."""
    fn, cost = _ENTRIES[app_name]
    program = EnclaveProgram(f"repro/app-{app_name}-{flavor}-v1")
    program.add_entry("process", AtomicEntry(fn, cost_ns=cost))
    return builder.build(f"app-{app_name}-{flavor}", program, n_workers=2, heap_pages=4)
