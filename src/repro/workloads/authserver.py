"""The password server of the §V-A rollback attack.

"a mail server running in an enclave requires a client to enter a
password for authentication.  To mitigate brute-force attacks, the server
sets a policy that a client can make at most three failed attempts."

The failed-attempt counter lives in enclave memory.  A rollback attack
restores an old checkpoint to reset the counter and keep guessing; the
owner-keyed snapshot scheme (§V-C) makes every restore auditable.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256
from repro.sdk.builder import BuiltImage, SdkBuilder
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sdk.runtime import EnclaveRuntime

AUTH_STATE = "auth_state"
MAX_ATTEMPTS = 3


def _state(rt: EnclaveRuntime) -> dict:
    return rt.load_obj(AUTH_STATE, default=None)


def _setup(rt: EnclaveRuntime, args) -> dict:
    rt.store_obj(
        AUTH_STATE,
        {
            "password_hash": sha256(args["password"].encode()),
            "failed_attempts": 0,
            "locked": False,
            "alarms": 0,
        },
    )
    return {"ok": True}


def _try_password(rt: EnclaveRuntime, args) -> dict:
    state = _state(rt)
    if state is None:
        return {"ok": False, "error": "not set up"}
    if state["locked"]:
        state["alarms"] += 1
        rt.store_obj(AUTH_STATE, state)
        return {"ok": False, "locked": True, "alarm": True}
    if sha256(args["password"].encode()) == state["password_hash"]:
        state["failed_attempts"] = 0
        rt.store_obj(AUTH_STATE, state)
        return {"ok": True, "authenticated": True}
    state["failed_attempts"] += 1
    if state["failed_attempts"] >= MAX_ATTEMPTS:
        state["locked"] = True
        state["alarms"] += 1
    rt.store_obj(AUTH_STATE, state)
    return {
        "ok": True,
        "authenticated": False,
        "remaining": max(0, MAX_ATTEMPTS - state["failed_attempts"]),
        "locked": state["locked"],
    }


def _status(rt: EnclaveRuntime, args) -> dict:
    state = _state(rt) or {}
    return {
        "failed_attempts": state.get("failed_attempts"),
        "locked": state.get("locked"),
        "alarms": state.get("alarms"),
    }


def build_authserver_image(builder: SdkBuilder) -> BuiltImage:
    program = EnclaveProgram("repro/authserver-v1")
    program.add_entry("setup", AtomicEntry(_setup))
    program.add_entry("try_password", AtomicEntry(_try_password))
    program.add_entry("status", AtomicEntry(_status, cost_ns=2_000))
    return builder.build(
        "authserver",
        program,
        n_workers=2,
        data_objects={AUTH_STATE: 4096},
    )
