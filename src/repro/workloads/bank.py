"""The two-account bank enclave of the §IV-A consistency attack (Fig. 3).

A worker thread repeatedly moves money between two accounts that live on
*different* enclave pages, with a preemption point between the debit and
the credit.  The invariant is ``A + B == TOTAL``.  A checkpointer that
trusts the OS to stop threads can dump A before a transfer and B after
it; the two-phase scheme cannot.
"""

from __future__ import annotations

from repro.sdk.builder import BuiltImage, SdkBuilder
from repro.sdk.program import AtomicEntry, EnclaveProgram, ResumableEntry
from repro.sdk.runtime import EnclaveRuntime

TOTAL = 5000

#: The two balances live in separate data objects so they are on
#: different pages — the naive dump reads them in different steps.
ACCOUNT_A = "account_a"
ACCOUNT_B = "account_b"


def _balance(rt: EnclaveRuntime, account: str) -> int:
    vaddr, _ = rt.layout.object_slot(account)
    return rt.load_u64(vaddr + 8)


def _set_balance(rt: EnclaveRuntime, account: str, value: int) -> None:
    vaddr, _ = rt.layout.object_slot(account)
    rt.store_u64(vaddr + 8, value)


def _init(rt: EnclaveRuntime, args) -> int:
    _set_balance(rt, ACCOUNT_A, TOTAL)
    _set_balance(rt, ACCOUNT_B, 0)
    return TOTAL


def _balances(rt: EnclaveRuntime, args) -> dict:
    return {"a": _balance(rt, ACCOUNT_A), "b": _balance(rt, ACCOUNT_B)}


def _prepare_transfers(rt: EnclaveRuntime, args) -> dict:
    if isinstance(args, dict):
        return {"rounds": int(args.get("rounds", 1)), "amount": int(args.get("amount", 100)), "done": 0}
    return {"rounds": int(args or 1), "amount": 100, "done": 0}


def _debit_step(rt: EnclaveRuntime, regs) -> None:
    _set_balance(rt, ACCOUNT_A, _balance(rt, ACCOUNT_A) - regs["amount"])


def _credit_step(rt: EnclaveRuntime, regs) -> None:
    _set_balance(rt, ACCOUNT_B, _balance(rt, ACCOUNT_B) + regs["amount"])
    regs["done"] += 1
    if regs["done"] < regs["rounds"] and regs["done"] * regs["amount"] < TOTAL:
        regs["__pc"] = -1  # loop back to the debit step
    else:
        regs["result"] = regs["done"]


def build_bank_image(builder: SdkBuilder) -> BuiltImage:
    program = EnclaveProgram("repro/bank-v1")
    program.add_entry("init", AtomicEntry(_init))
    program.add_entry("balances", AtomicEntry(_balances, cost_ns=2_000))
    program.add_entry(
        "transfer",
        ResumableEntry(prepare=_prepare_transfers, steps=(_debit_step, _credit_step)),
    )
    # The ledger filler puts many pages between the two balances, so a
    # page-by-page dump reads A long before B — a wide race window for
    # the §IV-A adversary (real enclaves have exactly this property:
    # related state scattered across a large heap).
    return builder.build(
        "bank",
        program,
        n_workers=2,
        data_objects={ACCOUNT_A: 4096, "ledger_filler": 24 * 4096, ACCOUNT_B: 4096},
    )
