"""A memcached-style in-enclave key-value store (Figure 11).

"We also make Memcached-1.4.22 run in an enclave to test the performance
of two-phase checkpointing when the output size increases.  During this
experiment, there are four threads running inside the enclave and the
output states are encrypted with AES-CBC which is implemented with
AES-NI" (§VIII-B).

The store keeps its slab memory directly in enclave heap pages; the
image is built at a chosen state size (1-32 MB in the paper's sweep) so
the checkpoint really carries that many bytes through the hash+encrypt
pipeline.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256
from repro.sdk.builder import BuiltImage, SdkBuilder
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sdk.runtime import EnclaveRuntime
from repro.sgx.structures import PAGE_SIZE
from repro.sim.rng import DeterministicRng

_SLOT_BYTES = 64
_HEADER = 2  # bytes of value-length prefix per slot


def _slot_vaddr(rt: EnclaveRuntime, key: str) -> int:
    n_slots = rt.layout.heap_bytes // _SLOT_BYTES
    index = int.from_bytes(sha256(key.encode())[:8], "big") % n_slots
    return rt.layout.heap_base + index * _SLOT_BYTES


def _set(rt: EnclaveRuntime, args) -> dict:
    value = args["value"].encode() if isinstance(args["value"], str) else args["value"]
    if len(value) > _SLOT_BYTES - _HEADER:
        return {"ok": False, "error": "value too large"}
    vaddr = _slot_vaddr(rt, args["key"])
    rt.write(vaddr, len(value).to_bytes(_HEADER, "little") + value)
    return {"ok": True}


def _get(rt: EnclaveRuntime, args) -> dict:
    vaddr = _slot_vaddr(rt, args["key"])
    length = int.from_bytes(rt.read(vaddr, _HEADER), "little")
    if length == 0 or length > _SLOT_BYTES - _HEADER:
        return {"ok": False}
    return {"ok": True, "value": rt.read(vaddr + _HEADER, length)}


def _fill(rt: EnclaveRuntime, args) -> int:
    """Populate the whole slab with deterministic data (warm state)."""
    rng = DeterministicRng(int(args or 0))
    chunk = rng.bytes(PAGE_SIZE)
    total = rt.layout.heap_bytes
    for offset in range(0, total, PAGE_SIZE):
        rt.write(rt.layout.heap_base + offset, chunk)
    return total


def build_memcached_image(builder: SdkBuilder, state_mb: int, n_workers: int = 4) -> BuiltImage:
    """Build a memcached enclave with ``state_mb`` megabytes of slab."""
    program = EnclaveProgram(f"repro/memcached-{state_mb}mb-v1")
    program.add_entry("set", AtomicEntry(_set, cost_ns=3_000))
    program.add_entry("get", AtomicEntry(_get, cost_ns=2_500))
    program.add_entry(
        "fill", AtomicEntry(_fill, cost_ns=200_000 * max(1, state_mb))
    )
    return builder.build(
        f"memcached-{state_mb}mb",
        program,
        n_workers=n_workers,
        heap_pages=state_mb * 1024 * 1024 // PAGE_SIZE,
    )
