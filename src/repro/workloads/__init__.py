"""Benchmark and demonstration workloads.

* :mod:`repro.workloads.nbench`     — the nine nbench 2.2.3 kernels the
  paper runs in-enclave for Figure 9(a).
* :mod:`repro.workloads.apps`       — the des/cr4/mcrypt/gnupg/libjpeg/
  libzip-style applications of Figure 9(b).
* :mod:`repro.workloads.bank`       — the two-account transfer enclave of
  the §IV-A consistency attack (Figure 3).
* :mod:`repro.workloads.mailserver` — the mail server of the §V-A fork
  attack (Figure 6).
* :mod:`repro.workloads.authserver` — the password server of the §V-A
  rollback attack.
* :mod:`repro.workloads.memcached`  — the memcached-style KV store of
  Figure 11.
"""

from repro.workloads.apps import build_app_image, APP_NAMES
from repro.workloads.authserver import build_authserver_image
from repro.workloads.bank import build_bank_image
from repro.workloads.mailserver import build_mailserver_image
from repro.workloads.memcached import build_memcached_image
from repro.workloads.nbench import NBENCH_KERNELS, build_nbench_image

__all__ = [
    "APP_NAMES",
    "NBENCH_KERNELS",
    "build_app_image",
    "build_authserver_image",
    "build_bank_image",
    "build_mailserver_image",
    "build_memcached_image",
    "build_nbench_image",
]
