"""The mail server of the §V-A fork attack (Figure 6).

State machine inside the enclave: a draft mail with a recipient list.
The client performs ① create (recipients include Eve), ② delete Eve,
③ send — waiting for each acknowledgment.  If a malicious operator can
run *two* live instances from one intermediate state, instance two never
sees operation ② and the mail goes to Eve.
"""

from __future__ import annotations

from repro.sdk.builder import BuiltImage, SdkBuilder
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sdk.runtime import EnclaveRuntime

MAILBOX = "mailbox"


def _load_box(rt: EnclaveRuntime) -> dict:
    return rt.load_obj(MAILBOX, default={"mails": [], "sent": []}) or {
        "mails": [],
        "sent": [],
    }


def _create_mail(rt: EnclaveRuntime, args) -> dict:
    box = _load_box(rt)
    mail = {
        "recipients": list(args["recipients"]),
        "content": args["content"],
        "status": "draft",
    }
    box["mails"].append(mail)
    rt.store_obj(MAILBOX, box)
    return {"ok": True, "mail_id": len(box["mails"]) - 1}


def _delete_recipient(rt: EnclaveRuntime, args) -> dict:
    box = _load_box(rt)
    mail = box["mails"][args["mail_id"]]
    if args["recipient"] in mail["recipients"]:
        mail["recipients"].remove(args["recipient"])
    rt.store_obj(MAILBOX, box)
    return {"ok": True, "recipients": list(mail["recipients"])}


def _send_mail(rt: EnclaveRuntime, args) -> dict:
    box = _load_box(rt)
    mail = box["mails"][args["mail_id"]]
    mail["status"] = "sent"
    box["sent"].append({"recipients": list(mail["recipients"]), "content": mail["content"]})
    rt.store_obj(MAILBOX, box)
    return {"ok": True, "delivered_to": list(mail["recipients"])}


def _sent_log(rt: EnclaveRuntime, args) -> list:
    return _load_box(rt)["sent"]


def build_mailserver_image(builder: SdkBuilder, flavor: str = "secure") -> BuiltImage:
    """Build the mail-server enclave.

    ``flavor`` feeds the code id: the fork-attack demonstration builds a
    deliberately *insecure* variant (no self-destroy) as a separate image
    to show what the paper's defense is preventing.
    """
    program = EnclaveProgram(f"repro/mailserver-{flavor}-v1")
    program.add_entry("create_mail", AtomicEntry(_create_mail))
    program.add_entry("delete_recipient", AtomicEntry(_delete_recipient))
    program.add_entry("send_mail", AtomicEntry(_send_mail))
    program.add_entry("sent_log", AtomicEntry(_sent_log, cost_ns=2_000))
    return builder.build(
        f"mailserver-{flavor}",
        program,
        n_workers=2,
        data_objects={MAILBOX: 2 * 4096},
    )
