"""Network model: the untrusted wire between machines and services."""

from repro.net.network import Network, NetworkTap

__all__ = ["Network", "NetworkTap"]
