"""The untrusted network.

Every byte of the migration protocol crosses this object, which charges
transfer time to the virtual clock, counts traffic for the experiments,
and lets tests install *taps*: adversary hooks that can observe, record,
tamper with, or replace messages in flight.  The security tests all work
this way — the protocol must survive an attacker who owns the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import EventTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

#: A tap receives (label, payload) and returns the payload to deliver
#: (possibly modified) — or None to deliver the original unchanged.
NetworkTap = Callable[[str, bytes], bytes | None]


@dataclass
class TransferRecord:
    label: str
    n_bytes: int
    payload: bytes


class Network:
    """Point-to-point links between the testbed's parties."""

    def __init__(self, clock: VirtualClock, costs: CostModel, trace: EventTrace) -> None:
        self.clock = clock
        self.costs = costs
        self.trace = trace
        self._taps: list[NetworkTap] = []
        self.log: list[TransferRecord] = []
        self.bytes_transferred = 0
        #: Optional fault injector (see :mod:`repro.faults`): unlike taps,
        #: it can refuse delivery (drop/partition), duplicate wire records
        #: and charge extra virtual time — infrastructure misbehaviour
        #: rather than silent adversarial rewriting.
        self.injector: "FaultInjector | None" = None

    def add_tap(self, tap: NetworkTap) -> None:
        """Install an adversary/observer hook on every transfer."""
        self._taps.append(tap)

    def clear_taps(self) -> None:
        self._taps.clear()

    def transfer(self, label: str, payload: bytes, wan: bool = False) -> bytes:
        """Move bytes between parties; returns what actually arrives.

        ``wan=True`` models the wide-area paths (owner, IAS); otherwise
        the machine-to-machine migration link.

        With a fault injector installed the call may instead raise
        :class:`~repro.errors.LinkPartitioned` (link is down; nothing
        entered the wire) or :class:`~repro.errors.LinkTimeout` (the
        message entered the wire and was lost; the sender waited out the
        acknowledgement window on the virtual clock).
        """
        if self.injector is not None:
            self.injector.link_check(label)
        n = len(payload)
        if wan:
            self.clock.advance(self.costs.wan_round_trip_ns() // 2 + self.costs.net_transfer_ns(n))
        else:
            self.clock.advance(self.costs.net_transfer_ns(n))
        self.bytes_transferred += n
        self.log.append(TransferRecord(label, n, payload))
        self.trace.emit("net", "transfer", label=label, bytes=n)
        self._meter(label, n, wan)
        delivered = payload
        for tap in self._taps:
            replacement = tap(label, delivered)
            if replacement is not None:
                delivered = replacement
        if self.injector is not None:
            delivered = self.injector.deliver(label, delivered, self)
        return delivered

    def record_duplicate(self, label: str, payload: bytes) -> None:
        """Account a duplicated delivery: the wire carried it twice."""
        n = len(payload)
        self.clock.advance(self.costs.net_transfer_ns(n))
        self.bytes_transferred += n
        self.log.append(TransferRecord(label, n, payload))
        self.trace.emit("net", "transfer", label=label, bytes=n, duplicate=True)
        self._meter(label, n, wan=False)

    def _meter(self, label: str, n_bytes: int, wan: bool) -> None:
        metrics = self.trace.metrics
        metrics.counter("wire.bytes", channel=label).inc(n_bytes)
        metrics.counter("wire.messages_total", channel=label).inc()
        if wan:
            metrics.counter("wire.wan_round_trips_total").inc()

    def captured(self, label: str) -> list[bytes]:
        """All payloads ever sent under ``label`` (the adversary's log)."""
        return [record.payload for record in self.log if record.label == label]
