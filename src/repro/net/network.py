"""The untrusted network.

Every byte of the migration protocol crosses this object, which charges
transfer time to the virtual clock, counts traffic for the experiments,
and lets tests install *taps*: adversary hooks that can observe, record,
tamper with, or replace messages in flight.  The security tests all work
this way — the protocol must survive an attacker who owns the wire.

Each transfer is additionally stamped with a
:class:`~repro.telemetry.causal.WireContext` — the run's trace id, the
span that was active at send time, and a global wire sequence number —
so the telemetry layer can assemble spans and transfers into one causal
DAG spanning all parties (see :mod:`repro.telemetry.causal`).  Dropped,
duplicated, and reordered messages keep their records, with status and
linkage fields that turn injected faults into visible graph edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import EventTrace
from repro.telemetry.causal import WireContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

#: A tap receives (label, payload) and returns the payload to deliver
#: (possibly modified) — or None to deliver the original unchanged.
NetworkTap = Callable[[str, bytes], bytes | None]


@dataclass
class TransferRecord:
    """One message's life on the wire, causal context included."""

    label: str
    n_bytes: int
    payload: bytes
    #: Global wire sequence number (unique per network, never reused).
    seq: int = 0
    #: Trace context stamped at send time; None on an uninstrumented wire.
    ctx: WireContext | None = None
    wan: bool = False
    #: When the bytes entered the wire (before serialization time).
    t_send_ns: int = 0
    #: When delivery completed or the loss was established.
    t_done_ns: int | None = None
    status: str = "sent"  #: sent | delivered | lost
    #: Set on the extra record of an injected duplicate delivery.
    duplicate: bool = False
    #: The original record's seq when this one is its duplicate.
    duplicate_of: int | None = None
    #: Flagged by the causal layer when a stream reorder swapped this
    #: record out of its send position.
    reordered: bool = False
    #: The span that observed the delivery (the receiving party's
    #: activity adopting the context); None for lost transfers.
    recv_span_id: int | None = None

    @property
    def delivered(self) -> bool:
        return self.status == "delivered"


class Network:
    """Point-to-point links between the testbed's parties."""

    def __init__(self, clock: VirtualClock, costs: CostModel, trace: EventTrace) -> None:
        self.clock = clock
        self.costs = costs
        self.trace = trace
        self._taps: list[NetworkTap] = []
        self.log: list[TransferRecord] = []
        self.bytes_transferred = 0
        self._seq = 0
        #: The record currently in flight (set around injector.deliver)
        #: so an injected duplicate can link back to its original.
        self._sending: TransferRecord | None = None
        #: Optional fault injector (see :mod:`repro.faults`): unlike taps,
        #: it can refuse delivery (drop/partition), duplicate wire records
        #: and charge extra virtual time — infrastructure misbehaviour
        #: rather than silent adversarial rewriting.
        self.injector: "FaultInjector | None" = None

    def add_tap(self, tap: NetworkTap) -> None:
        """Install an adversary/observer hook on every transfer."""
        self._taps.append(tap)

    def clear_taps(self) -> None:
        self._taps.clear()

    def transfer(self, label: str, payload: bytes, wan: bool = False) -> bytes:
        """Move bytes between parties; returns what actually arrives.

        ``wan=True`` models the wide-area paths (owner, IAS); otherwise
        the machine-to-machine migration link.

        With a fault injector installed the call may instead raise
        :class:`~repro.errors.LinkPartitioned` (link is down; nothing
        entered the wire — no record is logged) or
        :class:`~repro.errors.LinkTimeout` (the message entered the wire
        and was lost; its record stays in the log with ``status="lost"``
        and the sender waited out the acknowledgement window on the
        virtual clock).
        """
        if self.injector is not None:
            self.injector.link_check(label)
        if not isinstance(payload, bytes):
            # Accept bytes-like senders (memoryview/bytearray framing);
            # materialize once here so taps and the log see stable bytes.
            payload = bytes(payload)
        n = len(payload)
        record = self._stamp(label, n, payload, wan)
        if wan:
            self.clock.advance(self.costs.wan_round_trip_ns() // 2 + self.costs.net_transfer_ns(n))
        else:
            self.clock.advance(self.costs.net_transfer_ns(n))
        self.bytes_transferred += n
        self.log.append(record)
        self.trace.emit("net", "transfer", label=label, bytes=n, seq=record.seq)
        self._meter(label, n, wan)
        delivered = payload
        for tap in self._taps:
            replacement = tap(label, delivered)
            if replacement is not None:
                delivered = replacement
        self._sending = record
        try:
            if self.injector is not None:
                delivered = self.injector.deliver(label, delivered, self)
        except BaseException:
            record.status = "lost"
            record.t_done_ns = self.clock.now_ns
            raise
        finally:
            self._sending = None
        self._complete_delivery(record)
        return delivered

    def record_duplicate(self, label: str, payload: bytes) -> None:
        """Account a duplicated delivery: the wire carried it twice.

        The extra record shares the original's trace context and links
        back to it via ``duplicate_of``, so the causal DAG renders the
        fault as a duplicate edge instead of a second anonymous send.
        """
        n = len(payload)
        original = self._sending
        record = self._stamp(label, n, payload, wan=False)
        record.duplicate = True
        if original is not None:
            record.ctx = original.ctx
            record.duplicate_of = original.seq
        self.clock.advance(self.costs.net_transfer_ns(n))
        self.bytes_transferred += n
        self.log.append(record)
        self.trace.emit(
            "net", "transfer", label=label, bytes=n, seq=record.seq, duplicate=True
        )
        self._meter(label, n, wan=False)
        self._complete_delivery(record)

    # ------------------------------------------------------------- causality
    def _stamp(self, label: str, n: int, payload: bytes, wan: bool) -> TransferRecord:
        """New wire record carrying the active span's trace context."""
        self._seq += 1
        tracer = getattr(self.trace, "tracer", None)
        ctx = None
        if tracer is not None:
            active = tracer.active()
            ctx = WireContext(
                trace_id=tracer.trace_id,
                parent_span_id=active.span_id if active is not None else None,
                seq=self._seq,
            )
        return TransferRecord(
            label,
            n,
            payload,
            seq=self._seq,
            ctx=ctx,
            wan=wan,
            t_send_ns=self.clock.now_ns,
        )

    def _complete_delivery(self, record: TransferRecord) -> None:
        record.status = "delivered"
        record.t_done_ns = self.clock.now_ns
        tracer = getattr(self.trace, "tracer", None)
        if tracer is not None:
            active = tracer.active()
            if active is not None:
                # The receiving party's activity adopts the wire context:
                # the innermost open span at delivery time is the one
                # whose duration contains the arrival.
                record.recv_span_id = active.span_id
                active.attrs.setdefault("adopted_wire_seqs", []).append(record.seq)
        self.trace.emit("net", "deliver", label=record.label, seq=record.seq)

    def _meter(self, label: str, n_bytes: int, wan: bool) -> None:
        metrics = self.trace.metrics
        metrics.counter("wire.bytes", channel=label).inc(n_bytes)
        metrics.counter("wire.messages_total", channel=label).inc()
        if wan:
            metrics.counter("wire.wan_round_trips_total").inc()

    def captured(self, label: str) -> list[bytes]:
        """All payloads ever sent under ``label`` (the adversary's log)."""
        return [record.payload for record in self.log if record.label == label]
