#!/usr/bin/env python3
"""Quickstart: build an enclave, run it, and live-migrate it.

This walks the whole stack once:

1. build a two-machine testbed (SGX CPUs, hypervisors, guest VMs, IAS);
2. write a tiny enclave program and build a signed image with the SDK
   (which silently injects the control thread and migration stubs);
3. launch it — the owner attests the enclave and provisions its secrets;
4. run some ecalls, including a long-running one that gets interrupted;
5. migrate the enclave to the target machine mid-flight;
6. watch the interrupted work resume exactly where it left off, and the
   source enclave refuse to ever run again (self-destroy).

Run:  python examples/quickstart.py
"""

from repro import MigrationOrchestrator, build_testbed
from repro.sdk import AtomicEntry, EnclaveProgram, HostApplication, ResumableEntry, WorkerSpec


def build_program() -> EnclaveProgram:
    """A counter service: one fast entry, one slow (interruptible) one."""
    program = EnclaveProgram("examples/quickstart-counter-v1")

    def incr(rt, args):
        value = rt.load_global("counter") + int(1 if args is None else args)
        rt.store_global("counter", value)
        return value

    program.add_entry("incr", AtomicEntry(incr))

    def prepare(rt, args):
        return {"remaining": int(args)}

    def step(rt, regs):
        if regs["remaining"] > 0:
            rt.store_global("counter", rt.load_global("counter") + 1)
            regs["remaining"] -= 1
            regs["__pc"] -= 1  # stay on this step until drained
        else:
            regs["result"] = rt.load_global("counter")

    program.add_entry(
        "slow_count", ResumableEntry(prepare=prepare, steps=(step, lambda rt, regs: None))
    )
    return program


def main() -> None:
    print("== building the two-machine testbed ==")
    tb = build_testbed(seed=2024)

    print("== building and signing the enclave image ==")
    built = tb.builder.build(
        "quickstart", build_program(), n_workers=2, global_names=("counter",)
    )
    tb.owner.register_image(built)
    print(f"   MRENCLAVE = {built.image.mrenclave.hex()[:32]}…")

    print("== launching on the source machine (owner attests + provisions) ==")
    app = HostApplication(
        tb.source,
        tb.source_os,
        built.image,
        workers=[
            WorkerSpec("incr", args=1, repeat=10),
            WorkerSpec("slow_count", args=800, repeat=1),  # long-running
        ],
        owner=tb.owner,
    ).launch()

    for _ in range(80):
        tb.source_os.engine.step_round()
    before = app.ecall_once(0, "incr", 0)
    print(f"   counter before migration: {before}")

    print("== live-migrating the enclave ==")
    result = MigrationOrchestrator(tb).migrate_enclave(app)
    parked = {idx: cssa for idx, cssa in result.replay_plan.items()}
    print(f"   checkpoint size: {result.checkpoint_bytes} bytes")
    print(f"   threads parked mid-flight (TCS -> CSSA): {parked}")

    target = result.target_app
    print("== resuming on the target ==")
    for _ in range(30_000):
        if not target.process.live_threads():
            break
        tb.target_os.engine.step_round()
    after = target.ecall_once(0, "incr", 0)
    print(f"   counter after migration:  {after}  (10 incr + 800 slow counts)")

    print("== source is self-destroyed: new ecalls spin forever ==")
    zombie = tb.source_os.spawn_thread(
        app.process, "zombie", app.library.ecall_body(0, "incr", 1)
    )
    for _ in range(300):
        tb.source_os.engine.step_round()
    print(f"   source ecall completed? {zombie.finished}  (expected: False)")
    print(f"== done — virtual time elapsed: {tb.clock.now_ms:.1f} ms ==")


if __name__ == "__main__":
    main()
