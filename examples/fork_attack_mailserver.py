#!/usr/bin/env python3
"""The §V-A fork attack on a mail server — and why it fails (Figure 6).

A client drives a draft-mail workflow against an enclave mail server:

  ① create a mail whose recipients include Eve,
  ② delete Eve from the recipients,
  ③ send the mail,

waiting for each acknowledgment.  A forking cloud operator wants to run
*two* instances from the state after ①, serve ② on one and ③ on the
other — so the copy that sends never saw the deletion and Eve gets the
mail.

This example runs both worlds:

* the paper's protocol, where every avenue to a second instance is a
  dead end (single secure channel, single K_migrate, self-destroy);
* an owner-keyed snapshot flow, where the fork *semantically* succeeds —
  but only by asking the enclave owner for keys, leaving an audit trail
  (§V-C: "By auditing the log, an owner can check suspicious rollbacks").

Run:  python examples/fork_attack_mailserver.py
"""

from repro.attacks.fork import run_fork_scenario


def main() -> None:
    print("== world 1: the paper's migration protocol ==")
    secure = run_fork_scenario("secure")
    for step in secure.blocked_steps:
        print(f"   fork avenue blocked: {step}")
    print(f"   did Eve get the mail? {secure.eve_got_mail}  (expected: False)")
    assert not secure.eve_got_mail

    print()
    print("== world 2: operator abuses owner-keyed snapshots ==")
    forked = run_fork_scenario("forked")
    print(f"   did Eve get the mail? {forked.eve_got_mail}  (the fork 'works'...)")
    print(
        f"   ...but the owner's audit log now has {forked.audit_entries} entries "
        "documenting the snapshot and the resume"
    )
    assert forked.eve_got_mail
    assert forked.audit_entries >= 2

    print()
    print("Takeaway: migration needs no owner and is fork-proof;")
    print("checkpoint/resume is possible but owner-audited — exactly §V of the paper.")


if __name__ == "__main__":
    main()
