#!/usr/bin/env python3
"""Owner-audited checkpoint/resume and the rollback attack (§V-C).

A password server locks after three failed attempts.  This example shows:

* migration cannot roll the counter back (state continuity, P-4);
* owner-keyed snapshots support legitimate suspend/resume;
* a brute-forcing operator abusing resume leaves an audit trail and the
  owner's rollback detector flags the repeats.

Run:  python examples/snapshot_audit.py
"""

from repro import SnapshotManager, build_testbed
from repro.attacks.rollback import launch_authserver as _launch_authserver
from repro.attacks.rollback import run_rollback_scenario


def main() -> None:
    print("== legitimate snapshot / resume ==")
    tb = build_testbed(seed=99)
    app = _launch_authserver(tb)
    app.ecall_once(0, "try_password", {"password": "wrong-once"})
    manager = SnapshotManager(tb, tb.owner)
    snap = manager.snapshot(app, reason="planned host maintenance")
    print(f"   snapshot taken: sequence {snap.sequence}, {snap.size} bytes (sealed)")
    resumed = manager.resume(snap, app, reason="maintenance finished")
    status = resumed.ecall_once(0, "status")
    print(f"   resumed instance remembers the failed attempt: {status}")
    print(f"   owner audit log: "
          + "; ".join(f"{e.operation}({e.reason.split(' (')[0]})" for e in tb.owner.audit_log))

    print()
    print("== rollback attack via migration: blocked ==")
    migration = run_rollback_scenario("migration")
    print(f"   attempts before lock: {migration.attempts_made}, "
          f"still locked after migration: {migration.locked_after}")

    print()
    print("== rollback attack via snapshots: audited ==")
    abuse = run_rollback_scenario("snapshot")
    print(f"   extra guesses the operator bought: {abuse.extra_attempts_via_snapshots}")
    print(f"   resumes the owner logged:          {abuse.resumes_logged}")
    print(f"   flagged as suspicious rollbacks:   {abuse.flagged_rollbacks}")
    assert abuse.flagged_rollbacks >= 1

    print()
    print("Takeaway: migration preserves state continuity with no owner in the")
    print("loop; checkpoint/resume trades that for auditability — §V-C.")


if __name__ == "__main__":
    main()
