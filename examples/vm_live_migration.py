#!/usr/bin/env python3
"""Whole-VM live migration with enclaves inside (§VI-D, Figure 8).

Migrates a 2 GB / 4-VCPU guest three ways and prints the indicators the
paper's Figure 10 reports:

* baseline: the same VM with no enclaves;
* with enclaves, plain protocol: remote attestation sits on the restore
  path (one IAS round trip per enclave);
* with enclaves + agent enclave (§VI-D): keys were escrowed during
  pre-copy, so restore only needs cheap local attestation.

Run:  python examples/vm_live_migration.py
"""

from repro import build_testbed
from repro.migration.agent import AgentService, build_agent_image
from repro.migration.vm import VmMigrationManager, migrate_plain_vm
from repro.sdk import HostApplication, WorkerSpec
from repro.workloads.apps import build_app_image

N_ENCLAVES = 8


def launch_enclaves(tb, n, flavor):
    apps = []
    for i in range(n):
        built = build_app_image(tb.builder, "cr4", flavor=f"{flavor}{i}")
        tb.owner.register_image(built)
        apps.append(
            HostApplication(
                tb.source,
                tb.source_os,
                built.image,
                workers=[WorkerSpec("process", args=i + 1, repeat=None)],
                owner=tb.owner,
            ).launch()
        )
    for _ in range(50):
        tb.source_os.engine.step_round()
    return apps


def main() -> None:
    print(f"== baseline: VM without enclaves ==")
    tb = build_testbed(seed=77)
    base = migrate_plain_vm(tb)
    print(f"   total {base.total_ms:9.0f} ms | downtime {base.downtime_ms:6.2f} ms | "
          f"transferred {base.transferred_mb:7.1f} MB | rounds {base.precopy_rounds}")

    print(f"== VM with {N_ENCLAVES} enclaves (plain protocol) ==")
    tb2 = build_testbed(seed=77)
    apps = launch_enclaves(tb2, N_ENCLAVES, "plain")
    plain = VmMigrationManager(tb2, apps).migrate()
    print(f"   total {plain.total_ms:9.0f} ms | downtime {plain.downtime_ms:6.2f} ms | "
          f"transferred {plain.transferred_mb:7.1f} MB | "
          f"checkpointing {plain.prep_ms:.2f} ms | restore {plain.restore_ms:.2f} ms")

    print(f"== VM with {N_ENCLAVES} enclaves + agent enclave ==")
    tb3 = build_testbed(seed=77)
    agent_built = build_agent_image(tb3.builder)
    tb3.owner.set_agent_image(agent_built)
    apps3 = launch_enclaves(tb3, N_ENCLAVES, "agent")
    agent = AgentService(tb3, agent_built)
    fast = VmMigrationManager(tb3, apps3).migrate(agent=agent)
    print(f"   total {fast.total_ms:9.0f} ms | downtime {fast.downtime_ms:6.2f} ms | "
          f"transferred {fast.transferred_mb:7.1f} MB | "
          f"checkpointing {fast.prep_ms:.2f} ms | restore {fast.restore_ms:.2f} ms")

    print()
    overhead = 100.0 * (plain.total_ms - base.total_ms) / base.total_ms
    print(f"Total-time overhead from enclaves: {overhead:.1f}% "
          f"(the paper reports ~2% at 32 enclaves, ~5% at 64)")
    print(f"Downtime growth: {plain.downtime_ms - base.downtime_ms:+.2f} ms "
          f"(the paper reports ~+3 ms at 64 enclaves)")
    speedup = plain.restore_ms / max(fast.restore_ms, 1e-9)
    print(f"Agent enclave cuts restore latency {speedup:.0f}x "
          f"(remote attestation moved off the critical path)")


if __name__ == "__main__":
    main()
