#!/usr/bin/env python3
"""The §IV-A data-consistency attack on a bank enclave (Figure 3).

A bank enclave moves money between two accounts that live on different
pages; the invariant is A + B == 5000.  The guest OS is *malicious*: when
asked to stop the worker threads it says "OK" and keeps scheduling them.

Two checkpointers face that OS:

* a naive one that trusts ``stop_other_threads()`` — it dumps account A,
  the unstopped worker keeps transferring, then it dumps account B:
  the checkpoint contains money that never existed;
* the paper's two-phase checkpointer, which only believes the in-enclave
  flags and waits for a real quiescent point.

Run:  python examples/consistency_attack_bank.py
"""

from repro.attacks.consistency import run_consistency_scenario


def main() -> None:
    print("== naive checkpointer vs. lying scheduler ==")
    naive = run_consistency_scenario("naive", malicious_scheduler=True)
    print(f"   invariant A+B in restored enclave: {naive.restored_sum} "
          f"(should be {naive.expected_sum})")
    print(f"   consistent? {naive.consistent}  -> the attack of Figure 3 landed")
    assert not naive.consistent

    print()
    print("== two-phase checkpointer vs. the same lying scheduler ==")
    two_phase = run_consistency_scenario("two-phase", malicious_scheduler=True)
    print(f"   invariant A+B after migration + resumed in-flight transfer: "
          f"{two_phase.restored_sum}")
    print(f"   consistent? {two_phase.consistent}")
    assert two_phase.consistent

    print()
    print("Takeaway: quiescence must be proven inside the enclave (global +")
    print("local flags), never taken on the untrusted OS's word — §IV-B.")


if __name__ == "__main__":
    main()
