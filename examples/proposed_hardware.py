#!/usr/bin/env python3
"""The paper's §VII-B hardware wishlist, running.

The paper closes with suggestions to Intel: a control enclave that
negotiates migration keys (EPUTKEY), an EMIGRATE freeze, per-page
re-keying (ESWPOUT/ECHANGEOUT → ESWPIN/ECHANGEIN), and a final
EMIGRATEDONE integrity check — making enclave migration *transparent* to
the enclave: no control thread, no two-phase checkpointing, no CSSA
replay, because the hardware can move what software cannot read.

This example migrates an enclave with a thread parked mid-execution
(CSSA = 1) purely with the proposed instructions, then resumes it on the
target with a single ERESUME.

Run:  python examples/proposed_hardware.py
"""

from repro import build_testbed
from repro.sdk import AtomicEntry, EnclaveProgram, HostApplication
from repro.sgx import instructions as isa
from repro.sgx import proposed


def main() -> None:
    tb = build_testbed(seed=606)
    program = EnclaveProgram("examples/hw-migration-v1")
    program.add_entry(
        "poke", AtomicEntry(lambda rt, args: rt.store_global("value", int(args)) or int(args))
    )
    built = tb.builder.build("hw-demo", program, n_workers=1, global_names=("value",))
    tb.owner.register_image(built)
    app = HostApplication(tb.source, tb.source_os, built.image, [], owner=tb.owner).launch()
    app.ecall_once(0, "poke", 4242)

    # Park a thread mid-flight the hardware way: AEX leaves CSSA = 1.
    worker = built.image.worker_tcs(0)
    session = isa.eenter(tb.source.cpu, app.library.hw(), worker.vaddr)
    isa.aex(session, {"kind": "work", "entry": "poke", "regs": {"note": "interrupted"}})

    print("== control enclaves negotiate migration keys (EPUTKEY) ==")
    ce_src = proposed.ControlEnclave(tb.source.cpu)
    ce_tgt = proposed.ControlEnclave(tb.target.cpu)
    keys = ce_src.negotiate_keys(ce_tgt)
    proposed.eputkey(tb.source.cpu, ce_src, keys)
    proposed.eputkey(tb.target.cpu, ce_tgt, keys)

    print("== EMIGRATE freezes the source; ESWPOUT drains every page ==")
    enclave = app.library.hw()
    proposed.emigrate(tb.source.cpu, enclave)
    blobs = [proposed.eswpout_secs(tb.source.cpu, enclave)]
    for vaddr in list(enclave.mapped_vaddrs()):
        if enclave.page_present(vaddr):
            blobs.append(proposed.eswpout(tb.source.cpu, enclave, vaddr))
    stream_mac = proposed.finalize_stream(enclave)
    print(f"   {len(blobs)} pages re-keyed (SECS and TCS included — even CSSA travels)")

    print("== ESWPIN rebuilds on the target; EMIGRATEDONE verifies ==")
    new_enclave = proposed.eswpin_secs(tb.target.cpu, blobs[0])
    for blob in blobs[1:]:
        proposed.eswpin(tb.target.cpu, new_enclave, blob)
    proposed.emigratedone(tb.target.cpu, new_enclave, stream_mac)
    print(f"   measurement preserved: {new_enclave.secs.mrenclave == enclave.secs.mrenclave}")

    print("== the parked thread resumes on the target with plain ERESUME ==")
    resumed, ctx = isa.eresume(tb.target.cpu, new_enclave, worker.vaddr)
    value_slot = built.image.layout.global_slot("value")
    import struct
    value = struct.unpack("<Q", resumed.read(value_slot, 8))[0]
    print(f"   restored context: {ctx['regs']}")
    print(f"   enclave state intact: value = {value}")
    isa.eexit(resumed)

    try:
        isa.eenter(tb.source.cpu, enclave, worker.vaddr)
        raise AssertionError("frozen source ran!")
    except Exception as error:
        print(f"   frozen source refuses to run: {type(error).__name__}")

    print()
    print("Takeaway: with the §VII-B instructions the entire §III-§V software")
    print("protocol collapses into a hardware-verified page stream.")


if __name__ == "__main__":
    main()
